//===- workloads/workloads.cpp --------------------------------------------===//

#include "workloads/workloads.h"

#include <cmath>

#include "frontend/libop.h"

using namespace ft;
using namespace ft::workloads;

float ft::workloads::frand(uint64_t &State) {
  State ^= State << 13;
  State ^= State >> 7;
  State ^= State << 17;
  return static_cast<float>(static_cast<int64_t>(State % 2000001) - 1000000) /
         1000000.0f;
}

namespace {

Expr ic(int64_t V) { return makeIntConst(V); }
Expr fc(double V) { return makeFloatConst(V); }

} // namespace

//===----------------------------------------------------------------------===//
// SubdivNet
//===----------------------------------------------------------------------===//

SubdivNetData ft::workloads::makeSubdivNetData(const SubdivNetConfig &C) {
  SubdivNetData D;
  D.E = Buffer(DataType::Float32, {C.NFaces, C.Feats});
  D.Adj = Buffer(DataType::Int64, {C.NFaces, 3});
  uint64_t S = 0x5bd1e995;
  for (int64_t I = 0; I < D.E.numel(); ++I)
    D.E.as<float>()[I] = frand(S);
  // A ring-ish mesh adjacency: neighbors at pseudo-random offsets.
  uint64_t S2 = 0x9e3779b9;
  for (int64_t I = 0; I < C.NFaces; ++I)
    for (int64_t J = 0; J < 3; ++J) {
      S2 = S2 * 6364136223846793005ull + 1442695040888963407ull;
      D.Adj.as<int64_t>()[I * 3 + J] =
          static_cast<int64_t>((I + 1 + (S2 >> 33) % 97) % C.NFaces);
    }
  return D;
}

Func ft::workloads::buildSubdivNet(const SubdivNetConfig &C) {
  FunctionBuilder B("subdivnet");
  View E = B.input("e", {ic(C.NFaces), ic(C.Feats)});
  View Adj = B.input("adj", {ic(C.NFaces), ic(3)}, DataType::Int64);
  View Y = B.output("y", {ic(C.NFaces), ic(C.Feats)});
  B.loop(
      "i", 0, C.NFaces,
      [&](Expr I) {
        B.loop("k", 0, C.Feats, [&](Expr K) {
          Y[I][K].assign(E[I][K].load());
          B.loop("j", 0, 3, [&](Expr J) {
            Expr NJ = Adj[I][J].load();
            Expr NJ1 = Adj[I][makeMod(J + 1, ic(3))].load();
            // The circular difference goes through a temporary, as the
            // libop-based formulation of Fig. 3(b) does — it is what the
            // selective-materialization ablation (Fig. 18) recomputes.
            View D = B.local("d", {});
            D.assign(E[NJ][K].load() - E[NJ1][K].load());
            Y[I][K] += E[NJ][K].load();
            Y[I][K] += ft::abs(D.load());
          });
        });
      },
      "faces");
  return B.build();
}

Func ft::workloads::buildSubdivNetDyn(const SubdivNetConfig &C) {
  FunctionBuilder B("subdivnet_dyn");
  // The extent parameter is declared first: the VarDef nest wraps
  // parameters outside-in, so `n` must be in scope where the tensor
  // parameters' dimension locals are emitted.
  Expr N = B.scalarInput("n");
  View E = B.input("e", {N, ic(C.Feats)});
  View Adj = B.input("adj", {N, ic(3)}, DataType::Int64);
  View Y = B.output("y", {N, ic(C.Feats)});
  B.loop(
      "i", ic(0), N,
      [&](Expr I) {
        B.loop("k", 0, C.Feats, [&](Expr K) {
          Y[I][K].assign(E[I][K].load());
          B.loop("j", 0, 3, [&](Expr J) {
            Expr NJ = Adj[I][J].load();
            Expr NJ1 = Adj[I][makeMod(J + 1, ic(3))].load();
            View D = B.local("d", {});
            D.assign(E[NJ][K].load() - E[NJ1][K].load());
            Y[I][K] += E[NJ][K].load();
            Y[I][K] += ft::abs(D.load());
          });
        });
      },
      "faces");
  return B.build();
}

eager::Tensor ft::workloads::subdivnetEager(const eager::Tensor &E,
                                            const eager::IndexTensor &AdjFlat,
                                            const SubdivNetConfig &C) {
  using namespace eager;
  // Step 1 (paper Fig. 2): gather the 3 neighbor features into a
  // materialized [n, 3, f] tensor — the n*3*f memory redundancy. AdjFlat
  // has shape [n, 3], so indexSelect0 yields [n, 3, f] directly.
  Tensor AdjFeat = indexSelect0(E, AdjFlat);
  // Step 2: circular reorder (the slice + concat = one full copy).
  Tensor Reordered = roll1(AdjFeat, 1);
  // Step 3: |diff| and reduction, plus the neighbor sum and center term.
  Tensor DiffAbs = abs(sub(AdjFeat, Reordered));
  Tensor CircSum = sumAxis(DiffAbs, 1); // [n, f]
  Tensor NbrSum = sumAxis(AdjFeat, 1);  // [n, f]
  return add(add(E, NbrSum), CircSum);
}

void ft::workloads::subdivnetNaive(const SubdivNetConfig &C, const float *E,
                                   const int64_t *Adj, float *Y) {
  for (int64_t I = 0; I < C.NFaces; ++I)
    for (int64_t K = 0; K < C.Feats; ++K) {
      float Acc = E[I * C.Feats + K];
      for (int64_t J = 0; J < 3; ++J) {
        int64_t NJ = Adj[I * 3 + J];
        int64_t NJ1 = Adj[I * 3 + (J + 1) % 3];
        Acc += E[NJ * C.Feats + K];
        Acc += std::fabs(E[NJ * C.Feats + K] - E[NJ1 * C.Feats + K]);
      }
      Y[I * C.Feats + K] = Acc;
    }
}

//===----------------------------------------------------------------------===//
// Longformer
//===----------------------------------------------------------------------===//

LongformerData ft::workloads::makeLongformerData(const LongformerConfig &C) {
  LongformerData D;
  for (Buffer *B : {&D.Q, &D.K, &D.V})
    *B = Buffer(DataType::Float32, {C.SeqLen, C.Feats});
  uint64_t S = 0xabcdef12;
  for (Buffer *B : {&D.Q, &D.K, &D.V})
    for (int64_t I = 0; I < B->numel(); ++I)
      B->as<float>()[I] = 0.5f * frand(S);
  return D;
}

Func ft::workloads::buildLongformer(const LongformerConfig &C) {
  const int64_t N = C.SeqLen, D = C.Feats, W = C.W;
  FunctionBuilder B("longformer");
  View Q = B.input("Q", {ic(N), ic(D)});
  View K = B.input("K", {ic(N), ic(D)});
  View V = B.input("V", {ic(N), ic(D)});
  View Y = B.output("y", {ic(N), ic(D)});
  B.loop(
      "j", 0, N,
      [&](Expr J) {
        View Dot = B.local("dot", {ic(2 * W + 1)});
        // Boundary positions start from -1e30 so softmax gives them ~0
        // weight (the masking of the operator baseline, in one store).
        B.loop("k", -W, W + 1, [&](Expr Kk) {
          Dot[Kk + W].assign(
              select(J + Kk >= 0 && J + Kk < N, fc(0.0), fc(-1e30)));
        });
        B.loop("k", -W, W + 1, [&](Expr Kk) {
          B.ifThen(J + Kk >= 0 && J + Kk < N, [&] {
            B.loop("p", 0, D, [&](Expr P) {
              Dot[Kk + W] += Q[J][P].load() * K[J + Kk][P].load();
            });
          });
        });
        View Attn = B.local("attn", {ic(2 * W + 1)});
        libop::softmax(B, Dot, Attn);
        B.loop("p", 0, D, [&](Expr P) { Y[J][P].assign(fc(0.0)); });
        B.loop("k", -W, W + 1, [&](Expr Kk) {
          B.ifThen(J + Kk >= 0 && J + Kk < N, [&] {
            B.loop("p", 0, D, [&](Expr P) {
              Y[J][P] += Attn[Kk + W].load() * V[J + Kk][P].load();
            });
          });
        });
      },
      "tokens");
  return B.build();
}

Func ft::workloads::buildLongformerDyn(const LongformerConfig &C) {
  const int64_t D = C.Feats, W = C.W;
  FunctionBuilder B("longformer_dyn");
  Expr N = B.scalarInput("n");
  View Q = B.input("Q", {N, ic(D)});
  View K = B.input("K", {N, ic(D)});
  View V = B.input("V", {N, ic(D)});
  View Y = B.output("y", {N, ic(D)});
  B.loop(
      "j", ic(0), N,
      [&](Expr J) {
        View Dot = B.local("dot", {ic(2 * W + 1)});
        B.loop("k", -W, W + 1, [&](Expr Kk) {
          Dot[Kk + W].assign(
              select(J + Kk >= 0 && J + Kk < N, fc(0.0), fc(-1e30)));
        });
        B.loop("k", -W, W + 1, [&](Expr Kk) {
          B.ifThen(J + Kk >= 0 && J + Kk < N, [&] {
            B.loop("p", 0, D, [&](Expr P) {
              Dot[Kk + W] += Q[J][P].load() * K[J + Kk][P].load();
            });
          });
        });
        View Attn = B.local("attn", {ic(2 * W + 1)});
        libop::softmax(B, Dot, Attn);
        B.loop("p", 0, D, [&](Expr P) { Y[J][P].assign(fc(0.0)); });
        B.loop("k", -W, W + 1, [&](Expr Kk) {
          B.ifThen(J + Kk >= 0 && J + Kk < N, [&] {
            B.loop("p", 0, D, [&](Expr P) {
              Y[J][P] += Attn[Kk + W].load() * V[J + Kk][P].load();
            });
          });
        });
      },
      "tokens");
  return B.build();
}

eager::Tensor ft::workloads::longformerEager(const eager::Tensor &Q,
                                             const eager::Tensor &K,
                                             const eager::Tensor &V,
                                             const LongformerConfig &C) {
  using namespace eager;
  const int64_t N = C.SeqLen, W = C.W, Win = 2 * W + 1;
  // Boundary mask [N, Win], no gradient.
  std::vector<float> MaskV(N * Win, 0.0f);
  for (int64_t I = 0; I < N; ++I)
    for (int64_t Kk = -W; Kk <= W; ++Kk)
      if (I + Kk >= 0 && I + Kk < N)
        MaskV[I * Win + (Kk + W)] = 1.0f;
  Tensor Mask = Tensor::fromVec({N, Win}, std::move(MaskV));

  Tensor KWin = slidingWindows(K, W);       // [N, Win, D] materialized.
  Tensor Scores = bmvDot(KWin, Q);          // [N, Win].
  Tensor Masked = maskedFill(Scores, Mask, -1e30f);
  Tensor Attn = softmaxLast(Masked);        // [N, Win].
  Tensor VWin = slidingWindows(V, W);       // [N, Win, D] materialized.
  return bmvWeight(Attn, VWin);             // [N, D].
}

void ft::workloads::longformerNaive(const LongformerConfig &C, const float *Q,
                                    const float *K, const float *V,
                                    float *Y) {
  const int64_t N = C.SeqLen, D = C.Feats, W = C.W, Win = 2 * W + 1;
  std::vector<float> Dot(Win), Attn(Win);
  for (int64_t J = 0; J < N; ++J) {
    for (int64_t Kk = -W; Kk <= W; ++Kk) {
      bool In = J + Kk >= 0 && J + Kk < N;
      float Acc = In ? 0.0f : -1e30f;
      if (In)
        for (int64_t P = 0; P < D; ++P)
          Acc += Q[J * D + P] * K[(J + Kk) * D + P];
      Dot[Kk + W] = Acc;
    }
    float Mx = Dot[0];
    for (int64_t I = 1; I < Win; ++I)
      Mx = std::max(Mx, Dot[I]);
    float Den = 0;
    for (int64_t I = 0; I < Win; ++I) {
      Attn[I] = std::exp(Dot[I] - Mx);
      Den += Attn[I];
    }
    for (int64_t P = 0; P < D; ++P)
      Y[J * D + P] = 0;
    for (int64_t Kk = -W; Kk <= W; ++Kk) {
      if (J + Kk < 0 || J + Kk >= N)
        continue;
      float A = Attn[Kk + W] / Den;
      for (int64_t P = 0; P < D; ++P)
        Y[J * D + P] += A * V[(J + Kk) * D + P];
    }
  }
}

//===----------------------------------------------------------------------===//
// SoftRas
//===----------------------------------------------------------------------===//

SoftRasData ft::workloads::makeSoftRasData(const SoftRasConfig &C) {
  SoftRasData D;
  D.Verts = Buffer(DataType::Float32, {C.NFaces, 3, 2});
  D.Px = Buffer(DataType::Float32, {C.numPixels()});
  D.Py = Buffer(DataType::Float32, {C.numPixels()});
  uint64_t S = 0x13572468;
  for (int64_t F = 0; F < C.NFaces; ++F) {
    float Cx = 0.5f * frand(S) + 0.5f, Cy = 0.5f * frand(S) + 0.5f;
    for (int64_t J = 0; J < 3; ++J) {
      D.Verts.as<float>()[(F * 3 + J) * 2 + 0] = Cx + 0.15f * frand(S);
      D.Verts.as<float>()[(F * 3 + J) * 2 + 1] = Cy + 0.15f * frand(S);
    }
  }
  for (int64_t Yp = 0; Yp < C.ImgH; ++Yp)
    for (int64_t Xp = 0; Xp < C.ImgW; ++Xp) {
      int64_t P = Yp * C.ImgW + Xp;
      D.Px.as<float>()[P] = (float(Xp) + 0.5f) / float(C.ImgW);
      D.Py.as<float>()[P] = (float(Yp) + 0.5f) / float(C.ImgH);
    }
  return D;
}

Func ft::workloads::buildSoftRas(const SoftRasConfig &C) {
  const int64_t P = C.numPixels(), F = C.NFaces;
  const double InvSigma = 1.0 / C.Sigma;
  FunctionBuilder B("softras");
  View Verts = B.input("verts", {ic(F), ic(3), ic(2)});
  View Px = B.input("px", {ic(P)});
  View Py = B.input("py", {ic(P)});
  View Img = B.output("img", {ic(P)});
  B.loop(
      "p", 0, P,
      [&](Expr Pi) {
        View S = B.local("acc", {});
        S.assign(fc(0.0));
        B.loop("f", 0, F, [&](Expr Fi) {
          // Signed edge cross products; the min is the soft coverage.
          auto Cross = [&](int64_t J) {
            int64_t J1 = (J + 1) % 3;
            Expr VX = Verts[Fi][ic(J)][ic(0)].load();
            Expr VY = Verts[Fi][ic(J)][ic(1)].load();
            Expr EX = Verts[Fi][ic(J1)][ic(0)].load() - VX;
            Expr EY = Verts[Fi][ic(J1)][ic(1)].load() - VY;
            return (Px[Pi].load() - VX) * EY - (Py[Pi].load() - VY) * EX;
          };
          View D = B.local("d", {});
          D.assign(ft::min(ft::min(Cross(0), Cross(1)), Cross(2)));
          // Log-space silhouette aggregation.
          S += ft::ln(fc(1.0) -
                      ft::sigmoid(D.load() * fc(InvSigma)) * fc(0.999));
        });
        Img[Pi].assign(fc(1.0) - ft::exp(S.load()));
      },
      "pixels");
  return B.build();
}

Func ft::workloads::buildSoftRasDyn(const SoftRasConfig &C) {
  const double InvSigma = 1.0 / C.Sigma;
  FunctionBuilder B("softras_dyn");
  Expr NF = B.scalarInput("nf");
  Expr NP = B.scalarInput("np");
  View Verts = B.input("verts", {NF, ic(3), ic(2)});
  View Px = B.input("px", {NP});
  View Py = B.input("py", {NP});
  View Img = B.output("img", {NP});
  B.loop(
      "p", ic(0), NP,
      [&](Expr Pi) {
        View S = B.local("acc", {});
        S.assign(fc(0.0));
        B.loop("f", ic(0), NF, [&](Expr Fi) {
          auto Cross = [&](int64_t J) {
            int64_t J1 = (J + 1) % 3;
            Expr VX = Verts[Fi][ic(J)][ic(0)].load();
            Expr VY = Verts[Fi][ic(J)][ic(1)].load();
            Expr EX = Verts[Fi][ic(J1)][ic(0)].load() - VX;
            Expr EY = Verts[Fi][ic(J1)][ic(1)].load() - VY;
            return (Px[Pi].load() - VX) * EY - (Py[Pi].load() - VY) * EX;
          };
          View D = B.local("d", {});
          D.assign(ft::min(ft::min(Cross(0), Cross(1)), Cross(2)));
          S += ft::ln(fc(1.0) -
                      ft::sigmoid(D.load() * fc(InvSigma)) * fc(0.999));
        });
        Img[Pi].assign(fc(1.0) - ft::exp(S.load()));
      },
      "pixels");
  return B.build();
}

SoftRasEagerInputs
ft::workloads::makeSoftRasEagerInputs(const SoftRasData &D,
                                      bool RequiresGrad) {
  SoftRasEagerInputs In;
  int64_t F = D.Verts.shape()[0];
  for (int J = 0; J < 3; ++J) {
    std::vector<float> X(F), Y(F);
    for (int64_t Fi = 0; Fi < F; ++Fi) {
      X[Fi] = D.Verts.as<float>()[(Fi * 3 + J) * 2 + 0];
      Y[Fi] = D.Verts.as<float>()[(Fi * 3 + J) * 2 + 1];
    }
    In.Vx[J] = eager::Tensor::fromVec({F}, X, RequiresGrad);
    In.Vy[J] = eager::Tensor::fromVec({F}, Y, RequiresGrad);
  }
  std::vector<float> PX(D.Px.as<float>(), D.Px.as<float>() + D.Px.numel());
  std::vector<float> PY(D.Py.as<float>(), D.Py.as<float>() + D.Py.numel());
  In.Px = eager::Tensor::fromVec({D.Px.numel()}, PX);
  In.Py = eager::Tensor::fromVec({D.Py.numel()}, PY);
  return In;
}

eager::Tensor ft::workloads::softrasEager(const SoftRasEagerInputs &In,
                                          const SoftRasConfig &C) {
  using namespace eager;
  Tensor D; // [P, F] running min of edge cross products.
  for (int J = 0; J < 3; ++J) {
    int J1 = (J + 1) % 3;
    Tensor EX = sub(In.Vx[J1], In.Vx[J]); // [F]
    Tensor EY = sub(In.Vy[J1], In.Vy[J]); // [F]
    Tensor DX = outerSub(In.Px, In.Vx[J]); // [P, F] materialized
    Tensor DY = outerSub(In.Py, In.Vy[J]); // [P, F] materialized
    Tensor CrossJ = sub(mulCols(DX, EY), mulCols(DY, EX)); // [P, F]
    D = J == 0 ? CrossJ : minEw(D, CrossJ);
  }
  Tensor Prob = sigmoid(scale(D, 1.0f / C.Sigma));     // [P, F]
  Tensor Ln = log(addScalar(scale(Prob, -0.999f), 1.0f)); // ln(1 - .999p)
  Tensor Sum = sumAxis(Ln, 1);                          // [P]
  return addScalar(scale(exp(Sum), -1.0f), 1.0f);       // 1 - exp(sum)
}

void ft::workloads::softrasNaive(const SoftRasConfig &C, const float *Verts,
                                 const float *Px, const float *Py,
                                 float *Img) {
  const int64_t P = C.numPixels(), F = C.NFaces;
  const float InvSigma = 1.0f / C.Sigma;
  for (int64_t Pi = 0; Pi < P; ++Pi) {
    float S = 0;
    for (int64_t Fi = 0; Fi < F; ++Fi) {
      float D = 1e30f;
      for (int J = 0; J < 3; ++J) {
        int J1 = (J + 1) % 3;
        float VX = Verts[(Fi * 3 + J) * 2 + 0];
        float VY = Verts[(Fi * 3 + J) * 2 + 1];
        float EX = Verts[(Fi * 3 + J1) * 2 + 0] - VX;
        float EY = Verts[(Fi * 3 + J1) * 2 + 1] - VY;
        float Cr = (Px[Pi] - VX) * EY - (Py[Pi] - VY) * EX;
        D = std::min(D, Cr);
      }
      float Prob = 1.0f / (1.0f + std::exp(-D * InvSigma));
      S += std::log(1.0f - 0.999f * Prob);
    }
    Img[Pi] = 1.0f - std::exp(S);
  }
}

//===----------------------------------------------------------------------===//
// GAT
//===----------------------------------------------------------------------===//

GATData ft::workloads::makeGATData(const GATConfig &C) {
  GATData D;
  D.H = Buffer(DataType::Float32, {C.NNodes, C.Feats});
  D.Adj = Buffer(DataType::Int64, {C.NNodes, C.Degree});
  D.A1 = Buffer(DataType::Float32, {C.Feats});
  D.A2 = Buffer(DataType::Float32, {C.Feats});
  uint64_t S = 0xfeedbeef;
  for (int64_t I = 0; I < D.H.numel(); ++I)
    D.H.as<float>()[I] = 0.5f * frand(S);
  for (int64_t I = 0; I < C.Feats; ++I) {
    D.A1.as<float>()[I] = 0.3f * frand(S);
    D.A2.as<float>()[I] = 0.3f * frand(S);
  }
  uint64_t S2 = 0x2468ace0;
  for (int64_t I = 0; I < C.NNodes; ++I)
    for (int64_t M = 0; M < C.Degree; ++M) {
      S2 = S2 * 6364136223846793005ull + 1442695040888963407ull;
      D.Adj.as<int64_t>()[I * C.Degree + M] =
          static_cast<int64_t>((I + 1 + (S2 >> 33) % 211) % C.NNodes);
    }
  return D;
}

Func ft::workloads::buildGAT(const GATConfig &C) {
  const int64_t N = C.NNodes, F = C.Feats, Deg = C.Degree;
  FunctionBuilder B("gat");
  View H = B.input("h", {ic(N), ic(F)});
  View Adj = B.input("adj", {ic(N), ic(Deg)}, DataType::Int64);
  View A1 = B.input("a1", {ic(F)});
  View A2 = B.input("a2", {ic(F)});
  View Y = B.output("y", {ic(N), ic(F)});
  // Per-node projections s1/s2, computed once.
  View S1 = B.local("s1", {ic(N)});
  View S2 = B.local("s2", {ic(N)});
  B.loop("i", 0, N, [&](Expr I) {
    S1[I].assign(fc(0.0));
    S2[I].assign(fc(0.0));
    B.loop("k", 0, F, [&](Expr K) {
      S1[I] += A1[K].load() * H[I][K].load();
      S2[I] += A2[K].load() * H[I][K].load();
    });
  });
  B.loop(
      "i", 0, N,
      [&](Expr I) {
        View Pv = B.local("p", {ic(Deg)});
        View Den = B.local("den", {});
        Den.assign(fc(1e-12));
        B.loop("m", 0, Deg, [&](Expr M) {
          Expr Nb = Adj[I][M].load();
          Pv[M].assign(ft::sigmoid(S1[I].load() + S2[Nb].load()));
          Den += Pv[M].load();
        });
        B.loop("k", 0, F, [&](Expr K) { Y[I][K].assign(fc(0.0)); });
        B.loop("m", 0, Deg, [&](Expr M) {
          Expr Nb = Adj[I][M].load();
          B.loop("k", 0, F, [&](Expr K) {
            Y[I][K] += Pv[M].load() / Den.load() * H[Nb][K].load();
          });
        });
      },
      "nodes");
  return B.build();
}

Func ft::workloads::buildGATDyn(const GATConfig &C) {
  const int64_t F = C.Feats, Deg = C.Degree;
  FunctionBuilder B("gat_dyn");
  Expr N = B.scalarInput("n");
  View H = B.input("h", {N, ic(F)});
  View Adj = B.input("adj", {N, ic(Deg)}, DataType::Int64);
  View A1 = B.input("a1", {ic(F)});
  View A2 = B.input("a2", {ic(F)});
  View Y = B.output("y", {N, ic(F)});
  // Symbolically sized locals: codegen takes the heap-vector path.
  View S1 = B.local("s1", {N});
  View S2 = B.local("s2", {N});
  B.loop("i", ic(0), N, [&](Expr I) {
    S1[I].assign(fc(0.0));
    S2[I].assign(fc(0.0));
    B.loop("k", 0, F, [&](Expr K) {
      S1[I] += A1[K].load() * H[I][K].load();
      S2[I] += A2[K].load() * H[I][K].load();
    });
  });
  B.loop(
      "i", ic(0), N,
      [&](Expr I) {
        View Pv = B.local("p", {ic(Deg)});
        View Den = B.local("den", {});
        Den.assign(fc(1e-12));
        B.loop("m", 0, Deg, [&](Expr M) {
          Expr Nb = Adj[I][M].load();
          Pv[M].assign(ft::sigmoid(S1[I].load() + S2[Nb].load()));
          Den += Pv[M].load();
        });
        B.loop("k", 0, F, [&](Expr K) { Y[I][K].assign(fc(0.0)); });
        B.loop("m", 0, Deg, [&](Expr M) {
          Expr Nb = Adj[I][M].load();
          B.loop("k", 0, F, [&](Expr K) {
            Y[I][K] += Pv[M].load() / Den.load() * H[Nb][K].load();
          });
        });
      },
      "nodes");
  return B.build();
}

eager::Tensor ft::workloads::gatEager(const eager::Tensor &H,
                                      const eager::IndexTensor &AdjFlat,
                                      const eager::IndexTensor &SelfFlat,
                                      const eager::Tensor &A1,
                                      const eager::Tensor &A2,
                                      const GATConfig &C) {
  using namespace eager;
  Tensor S1 = mv(H, A1);                       // [n]
  Tensor S2 = mv(H, A2);                       // [n]
  Tensor SSelf = indexSelect0(S1, SelfFlat);   // [n*deg]
  Tensor SNbr = indexSelect0(S2, AdjFlat);     // [n*deg]
  Tensor Pv = sigmoid(add(SSelf, SNbr));       // [n*deg]
  Tensor Den = scatterAdd0(Pv, SelfFlat, C.NNodes);   // [n]
  Tensor DenE = addScalar(indexSelect0(Den, SelfFlat), 1e-12f);
  Tensor Alpha = divEw(Pv, DenE);              // [n*deg]
  Tensor HN = indexSelect0(H, AdjFlat);        // [n*deg, f] materialized
  Tensor Weighted = mulRows(HN, Alpha);        // [n*deg, f]
  return scatterAdd0(Weighted, SelfFlat, C.NNodes); // [n, f]
}

void ft::workloads::gatNaive(const GATConfig &C, const float *H,
                             const int64_t *Adj, const float *A1,
                             const float *A2, float *Y) {
  const int64_t N = C.NNodes, F = C.Feats, Deg = C.Degree;
  std::vector<float> S1(N, 0.0f), S2(N, 0.0f), P(Deg);
  for (int64_t I = 0; I < N; ++I)
    for (int64_t K = 0; K < F; ++K) {
      S1[I] += A1[K] * H[I * F + K];
      S2[I] += A2[K] * H[I * F + K];
    }
  for (int64_t I = 0; I < N; ++I) {
    float Den = 1e-12f;
    for (int64_t M = 0; M < Deg; ++M) {
      int64_t Nb = Adj[I * Deg + M];
      P[M] = 1.0f / (1.0f + std::exp(-(S1[I] + S2[Nb])));
      Den += P[M];
    }
    for (int64_t K = 0; K < F; ++K)
      Y[I * F + K] = 0;
    for (int64_t M = 0; M < Deg; ++M) {
      int64_t Nb = Adj[I * Deg + M];
      float Al = P[M] / Den;
      for (int64_t K = 0; K < F; ++K)
        Y[I * F + K] += Al * H[Nb * F + K];
    }
  }
}
