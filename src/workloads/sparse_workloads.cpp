//===- workloads/sparse_workloads.cpp -------------------------------------===//

#include "workloads/sparse_workloads.h"

#include <cmath>
#include <vector>

#include "frontend/builder.h"
#include "workloads/workloads.h"

using namespace ft;
using namespace ft::workloads;

namespace {

Expr ic(int64_t V) { return makeIntConst(V); }
Expr fc(double V) { return makeFloatConst(V); }

} // namespace

SparseCSR ft::workloads::makeCSR(int64_t Rows, int64_t Cols, int64_t AvgDeg,
                                 uint64_t Seed) {
  SparseCSR A;
  A.Rows = Rows;
  A.Cols = Cols;
  std::vector<int64_t> Ptr(Rows + 1, 0);
  std::vector<int64_t> Idx;
  std::vector<float> Val;
  uint64_t S = Seed | 1;
  uint64_t VS = Seed ^ 0xabcdef12;
  for (int64_t I = 0; I < Rows; ++I) {
    S = S * 6364136223846793005ull + 1442695040888963407ull;
    // Skewed degrees in [0, 2*AvgDeg]: about one row in seven is empty,
    // the rest spread around the average — realistic nnz skew for the
    // profiler and the serving buckets.
    int64_t Deg = (S >> 33) % 7 == 0
                      ? 0
                      : static_cast<int64_t>((S >> 17) % (2 * AvgDeg + 1));
    for (int64_t J = 0; J < Deg; ++J) {
      S = S * 6364136223846793005ull + 1442695040888963407ull;
      Idx.push_back(static_cast<int64_t>((S >> 29) % Cols));
      Val.push_back(frand(VS));
    }
    Ptr[I + 1] = static_cast<int64_t>(Idx.size());
  }
  A.Nnz = static_cast<int64_t>(Idx.size());
  A.Indptr = Buffer::fromI64({Rows + 1}, Ptr);
  A.Indices = Buffer::fromI64({A.Nnz}, Idx);
  A.Val = Buffer::fromF32({A.Nnz}, Val);
  return A;
}

eager::IndexTensor ft::workloads::csrRowIds(const SparseCSR &A) {
  std::vector<int64_t> Ids(A.Nnz);
  const int64_t *Ptr = A.Indptr.as<int64_t>();
  for (int64_t I = 0; I < A.Rows; ++I)
    for (int64_t J = Ptr[I]; J < Ptr[I + 1]; ++J)
      Ids[J] = I;
  return eager::IndexTensor::fromVec({A.Nnz}, std::move(Ids));
}

eager::IndexTensor ft::workloads::csrCols(const SparseCSR &A) {
  const int64_t *C = A.Indices.as<int64_t>();
  return eager::IndexTensor::fromVec({A.Nnz},
                                     std::vector<int64_t>(C, C + A.Nnz));
}

eager::Tensor ft::workloads::csrVals(const SparseCSR &A, bool RequiresGrad) {
  const float *V = A.Val.as<float>();
  return eager::Tensor::fromVec({A.Nnz}, std::vector<float>(V, V + A.Nnz),
                                RequiresGrad);
}

//===----------------------------------------------------------------------===//
// SpMM
//===----------------------------------------------------------------------===//

SpMMData ft::workloads::makeSpMMData(const SpMMConfig &C) {
  SpMMData D;
  D.A = makeCSR(C.Rows, C.Cols, C.AvgDeg, C.Seed);
  D.X = Buffer(DataType::Float32, {C.Cols, C.Feats});
  uint64_t S = C.Seed ^ 0x77777777;
  for (int64_t I = 0; I < D.X.numel(); ++I)
    D.X.as<float>()[I] = frand(S);
  return D;
}

Func ft::workloads::buildSpMM(const SpMMConfig &C, int64_t Nnz) {
  FunctionBuilder B("spmm");
  View P = B.input("indptr", {ic(C.Rows + 1)}, DataType::Int64);
  View Ci = B.input("indices", {ic(Nnz)}, DataType::Int64);
  View V = B.input("val", {ic(Nnz)});
  View X = B.input("x", {ic(C.Cols), ic(C.Feats)});
  View Y = B.output("y", {ic(C.Rows), ic(C.Feats)});
  B.loop(
      "i", 0, C.Rows,
      [&](Expr I) {
        B.loop("k", 0, C.Feats, [&](Expr K) { Y[I][K].assign(fc(0.0)); });
        B.loop(
            "j", P[I].load(), P[I + 1].load(),
            [&](Expr J) {
              Expr Col = Ci[J].load();
              B.loop("k", 0, C.Feats, [&](Expr K) {
                Y[I][K] += V[J].load() * X[Col][K].load();
              });
            },
            "spmm_seg");
      },
      "rows");
  return B.build();
}

Func ft::workloads::buildSpMMDyn(const SpMMConfig &C) {
  FunctionBuilder B("spmm_dyn");
  Expr M = B.scalarInput("m");
  Expr NNZ = B.scalarInput("nnz");
  View P = B.input("indptr", {M + 1}, DataType::Int64);
  View Ci = B.input("indices", {NNZ}, DataType::Int64);
  View V = B.input("val", {NNZ});
  View X = B.input("x", {ic(C.Cols), ic(C.Feats)});
  View Y = B.output("y", {M, ic(C.Feats)});
  B.loop(
      "i", ic(0), M,
      [&](Expr I) {
        B.loop("k", 0, C.Feats, [&](Expr K) { Y[I][K].assign(fc(0.0)); });
        B.loop(
            "j", P[I].load(), P[I + 1].load(),
            [&](Expr J) {
              Expr Col = Ci[J].load();
              B.loop("k", 0, C.Feats, [&](Expr K) {
                Y[I][K] += V[J].load() * X[Col][K].load();
              });
            },
            "spmm_seg");
      },
      "rows");
  return B.build();
}

eager::Tensor ft::workloads::spmmEager(const eager::Tensor &Val,
                                       const eager::IndexTensor &RowIds,
                                       const eager::IndexTensor &Cols,
                                       const eager::Tensor &X, int64_t Rows) {
  using namespace eager;
  Tensor Xg = indexSelect0(X, Cols);   // [nnz, F] materialized gather.
  Tensor Wx = mulRows(Xg, Val);        // [nnz, F].
  return scatterAdd0(Wx, RowIds, Rows); // [Rows, F].
}

void ft::workloads::spmmNaive(const SpMMConfig &C, const SparseCSR &A,
                              const float *X, float *Y) {
  const int64_t *Ptr = A.Indptr.as<int64_t>();
  const int64_t *Idx = A.Indices.as<int64_t>();
  const float *V = A.Val.as<float>();
  for (int64_t I = 0; I < C.Rows; ++I) {
    for (int64_t K = 0; K < C.Feats; ++K)
      Y[I * C.Feats + K] = 0.0f;
    for (int64_t J = Ptr[I]; J < Ptr[I + 1]; ++J)
      for (int64_t K = 0; K < C.Feats; ++K)
        Y[I * C.Feats + K] += V[J] * X[Idx[J] * C.Feats + K];
  }
}

//===----------------------------------------------------------------------===//
// SDDMM
//===----------------------------------------------------------------------===//

SDDMMData ft::workloads::makeSDDMMData(const SDDMMConfig &C) {
  SDDMMData D;
  D.A = makeCSR(C.Rows, C.Cols, C.AvgDeg, C.Seed);
  D.Da = Buffer(DataType::Float32, {C.Rows, C.Feats});
  D.Db = Buffer(DataType::Float32, {C.Cols, C.Feats});
  uint64_t S = C.Seed ^ 0x12345678;
  for (int64_t I = 0; I < D.Da.numel(); ++I)
    D.Da.as<float>()[I] = frand(S);
  for (int64_t I = 0; I < D.Db.numel(); ++I)
    D.Db.as<float>()[I] = frand(S);
  return D;
}

Func ft::workloads::buildSDDMM(const SDDMMConfig &C, int64_t Nnz) {
  FunctionBuilder B("sddmm");
  View P = B.input("indptr", {ic(C.Rows + 1)}, DataType::Int64);
  View Ci = B.input("indices", {ic(Nnz)}, DataType::Int64);
  View V = B.input("val", {ic(Nnz)});
  View Da = B.input("a", {ic(C.Rows), ic(C.Feats)});
  View Db = B.input("b", {ic(C.Cols), ic(C.Feats)});
  View Out = B.output("out_val", {ic(Nnz)});
  B.loop(
      "i", 0, C.Rows,
      [&](Expr I) {
        B.loop(
            "j", P[I].load(), P[I + 1].load(),
            [&](Expr J) {
              View D = B.local("dot", {});
              D.assign(fc(0.0));
              Expr Col = Ci[J].load();
              B.loop("k", 0, C.Feats, [&](Expr K) {
                D += Da[I][K].load() * Db[Col][K].load();
              });
              Out[J].assign(V[J].load() * D.load());
            },
            "sddmm_seg");
      },
      "rows");
  return B.build();
}

Func ft::workloads::buildSDDMMDyn(const SDDMMConfig &C) {
  FunctionBuilder B("sddmm_dyn");
  Expr M = B.scalarInput("m");
  Expr NNZ = B.scalarInput("nnz");
  View P = B.input("indptr", {M + 1}, DataType::Int64);
  View Ci = B.input("indices", {NNZ}, DataType::Int64);
  View V = B.input("val", {NNZ});
  View Da = B.input("a", {M, ic(C.Feats)});
  View Db = B.input("b", {ic(C.Cols), ic(C.Feats)});
  View Out = B.output("out_val", {NNZ});
  B.loop(
      "i", ic(0), M,
      [&](Expr I) {
        B.loop(
            "j", P[I].load(), P[I + 1].load(),
            [&](Expr J) {
              View D = B.local("dot", {});
              D.assign(fc(0.0));
              Expr Col = Ci[J].load();
              B.loop("k", 0, C.Feats, [&](Expr K) {
                D += Da[I][K].load() * Db[Col][K].load();
              });
              Out[J].assign(V[J].load() * D.load());
            },
            "sddmm_seg");
      },
      "rows");
  return B.build();
}

eager::Tensor ft::workloads::sddmmEager(const eager::Tensor &Da,
                                        const eager::Tensor &Db,
                                        const eager::Tensor &Val,
                                        const eager::IndexTensor &RowIds,
                                        const eager::IndexTensor &Cols) {
  using namespace eager;
  Tensor Ag = indexSelect0(Da, RowIds); // [nnz, F] materialized.
  Tensor Bg = indexSelect0(Db, Cols);   // [nnz, F] materialized.
  Tensor Prod = mul(Ag, Bg);            // [nnz, F].
  Tensor Dots = sumAxis(Prod, 1);       // [nnz].
  return mul(Dots, Val);                // [nnz].
}

void ft::workloads::sddmmNaive(const SDDMMConfig &C, const SparseCSR &A,
                               const float *Da, const float *Db, float *Out) {
  const int64_t *Ptr = A.Indptr.as<int64_t>();
  const int64_t *Idx = A.Indices.as<int64_t>();
  const float *V = A.Val.as<float>();
  for (int64_t I = 0; I < C.Rows; ++I)
    for (int64_t J = Ptr[I]; J < Ptr[I + 1]; ++J) {
      float Acc = 0.0f;
      for (int64_t K = 0; K < C.Feats; ++K)
        Acc += Da[I * C.Feats + K] * Db[Idx[J] * C.Feats + K];
      Out[J] = V[J] * Acc;
    }
}

//===----------------------------------------------------------------------===//
// Segment softmax
//===----------------------------------------------------------------------===//

SegSoftmaxData ft::workloads::makeSegSoftmaxData(const SegSoftmaxConfig &C) {
  SegSoftmaxData D;
  D.G = makeCSR(C.Nodes, C.Nodes, C.AvgDeg, C.Seed);
  D.H = Buffer(DataType::Float32, {C.Nodes, C.Feats});
  uint64_t S = C.Seed ^ 0x31415926;
  for (int64_t I = 0; I < D.H.numel(); ++I)
    D.H.as<float>()[I] = frand(S);
  return D;
}

Func ft::workloads::buildSegSoftmax(const SegSoftmaxConfig &C, int64_t Nnz) {
  FunctionBuilder B("segsoftmax");
  View P = B.input("indptr", {ic(C.Nodes + 1)}, DataType::Int64);
  View Ci = B.input("indices", {ic(Nnz)}, DataType::Int64);
  View E = B.input("e", {ic(Nnz)});
  View H = B.input("h", {ic(C.Nodes), ic(C.Feats)});
  View Y = B.output("y", {ic(C.Nodes), ic(C.Feats)});
  B.loop(
      "i", 0, C.Nodes,
      [&](Expr I) {
        View Mx = B.localNoGrad("mx", {});
        Mx.assign(fc(-1e30));
        B.loop(
            "j", P[I].load(), P[I + 1].load(),
            [&](Expr J) { Mx.reduceMax(E[J].load()); }, "seg_max");
        View Sum = B.local("s", {});
        Sum.assign(fc(0.0));
        B.loop(
            "j", P[I].load(), P[I + 1].load(),
            [&](Expr J) { Sum += exp(E[J].load() - Mx.load()); }, "seg_sum");
        B.loop("k", 0, C.Feats, [&](Expr K) { Y[I][K].assign(fc(0.0)); });
        B.loop(
            "j", P[I].load(), P[I + 1].load(),
            [&](Expr J) {
              View W = B.local("w", {});
              W.assign(exp(E[J].load() - Mx.load()) / Sum.load());
              Expr Src = Ci[J].load();
              B.loop("k", 0, C.Feats, [&](Expr K) {
                Y[I][K] += W.load() * H[Src][K].load();
              });
            },
            "seg_agg");
      },
      "nodes");
  return B.build();
}

Func ft::workloads::buildSegSoftmaxDyn(const SegSoftmaxConfig &C) {
  FunctionBuilder B("segsoftmax_dyn");
  Expr N = B.scalarInput("m");
  Expr NNZ = B.scalarInput("nnz");
  View P = B.input("indptr", {N + 1}, DataType::Int64);
  View Ci = B.input("indices", {NNZ}, DataType::Int64);
  View E = B.input("e", {NNZ});
  View H = B.input("h", {N, ic(C.Feats)});
  View Y = B.output("y", {N, ic(C.Feats)});
  B.loop(
      "i", ic(0), N,
      [&](Expr I) {
        View Mx = B.localNoGrad("mx", {});
        Mx.assign(fc(-1e30));
        B.loop(
            "j", P[I].load(), P[I + 1].load(),
            [&](Expr J) { Mx.reduceMax(E[J].load()); }, "seg_max");
        View Sum = B.local("s", {});
        Sum.assign(fc(0.0));
        B.loop(
            "j", P[I].load(), P[I + 1].load(),
            [&](Expr J) { Sum += exp(E[J].load() - Mx.load()); }, "seg_sum");
        B.loop("k", 0, C.Feats, [&](Expr K) { Y[I][K].assign(fc(0.0)); });
        B.loop(
            "j", P[I].load(), P[I + 1].load(),
            [&](Expr J) {
              View W = B.local("w", {});
              W.assign(exp(E[J].load() - Mx.load()) / Sum.load());
              Expr Src = Ci[J].load();
              B.loop("k", 0, C.Feats, [&](Expr K) {
                Y[I][K] += W.load() * H[Src][K].load();
              });
            },
            "seg_agg");
      },
      "nodes");
  return B.build();
}

eager::Tensor ft::workloads::segSoftmaxEager(const eager::Tensor &Logit,
                                             const eager::IndexTensor &RowIds,
                                             const eager::IndexTensor &Src,
                                             const eager::Tensor &H,
                                             int64_t Nodes) {
  using namespace eager;
  Tensor ExpE = exp(Logit);                    // [nnz].
  Tensor Sums = scatterAdd0(ExpE, RowIds, Nodes); // [Nodes] segment sums.
  Tensor SumG = indexSelect0(Sums, RowIds);    // [nnz] gathered back.
  Tensor Wn = divEw(ExpE, SumG);               // [nnz] softmax weights.
  Tensor Hg = indexSelect0(H, Src);            // [nnz, F] materialized.
  Tensor Wh = mulRows(Hg, Wn);                 // [nnz, F].
  return scatterAdd0(Wh, RowIds, Nodes);       // [Nodes, F].
}

void ft::workloads::segSoftmaxNaive(const SegSoftmaxConfig &C,
                                    const SparseCSR &G, const float *H,
                                    float *Y) {
  const int64_t *Ptr = G.Indptr.as<int64_t>();
  const int64_t *Idx = G.Indices.as<int64_t>();
  const float *E = G.Val.as<float>();
  for (int64_t I = 0; I < C.Nodes; ++I) {
    float Mx = -1e30f;
    for (int64_t J = Ptr[I]; J < Ptr[I + 1]; ++J)
      Mx = std::max(Mx, E[J]);
    float Sum = 0.0f;
    for (int64_t J = Ptr[I]; J < Ptr[I + 1]; ++J)
      Sum += std::exp(E[J] - Mx);
    for (int64_t K = 0; K < C.Feats; ++K)
      Y[I * C.Feats + K] = 0.0f;
    for (int64_t J = Ptr[I]; J < Ptr[I + 1]; ++J) {
      float W = std::exp(E[J] - Mx) / Sum;
      for (int64_t K = 0; K < C.Feats; ++K)
        Y[I * C.Feats + K] += W * H[Idx[J] * C.Feats + K];
    }
  }
}
