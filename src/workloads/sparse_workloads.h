//===- workloads/sparse_workloads.h - CSR / segment workloads ----*- C++ -*-===//
///
/// \file
/// The sparse evaluation workloads of the ragged subsystem (DESIGN.md §17)
/// — SpMM, SDDMM, and segment-softmax GNN aggregation — each in the same
/// three implementations as workloads.h:
///
///   build*()     the FreeTensor DSL program, iterating CSR segments with
///                data-dependent loop bounds (`for j in
///                indptr[i]..indptr[i+1]`); `build*Dyn()` is the
///                shape-generic form with runtime extents `m` (rows) and
///                `nnz` (stored entries),
///   *Eager()     the operator-based baseline on EagerTensor — COO-style
///                gather / compute / scatter chains, each step fully
///                materialized at nnz granularity,
///   *Naive()     plain single-thread C++ loops (ground truth).
///
/// All sparse inputs share one CSR container whose row lengths are
/// deliberately skewed (including empty rows), so the profiler's ragged
/// iteration totals and the serving plane's nnz buckets see realistic
/// degree distributions.
///
//===----------------------------------------------------------------------===//

#ifndef FT_WORKLOADS_SPARSE_WORKLOADS_H
#define FT_WORKLOADS_SPARSE_WORKLOADS_H

#include "interp/buffer.h"
#include "ir/func.h"
#include "opframework/eager.h"

namespace ft {
namespace workloads {

/// A CSR matrix: Indptr[i]..Indptr[i+1] delimits row i's entries in
/// Indices (column ids) and Val.
struct SparseCSR {
  int64_t Rows = 0;
  int64_t Cols = 0;
  int64_t Nnz = 0;
  Buffer Indptr;  ///< [Rows + 1] int64, non-decreasing, Indptr[Rows] == Nnz.
  Buffer Indices; ///< [Nnz] int64 column ids in [0, Cols).
  Buffer Val;     ///< [Nnz] float32.
};

/// Deterministic CSR with skewed row degrees: degrees cycle through
/// [0, 2*AvgDeg] (about one row in seven empty), columns pseudo-random.
SparseCSR makeCSR(int64_t Rows, int64_t Cols, int64_t AvgDeg, uint64_t Seed);

/// Per-entry row ids (COO expansion of Indptr) — the scatter/gather index
/// the eager baselines need to materialize.
eager::IndexTensor csrRowIds(const SparseCSR &A);

/// Eager views of the CSR arrays.
eager::IndexTensor csrCols(const SparseCSR &A);
eager::Tensor csrVals(const SparseCSR &A, bool RequiresGrad = false);

//===----------------------------------------------------------------------===//
// SpMM: Y = A @ X with A sparse CSR.
//   y[i,k] = sum_{j in seg(i)} val[j] * x[indices[j], k]
//===----------------------------------------------------------------------===//

struct SpMMConfig {
  int64_t Rows = 2048;
  int64_t Cols = 1024;
  int64_t Feats = 64;
  int64_t AvgDeg = 16;
  uint64_t Seed = 0x5eed5eed;
};

struct SpMMData {
  SparseCSR A;
  Buffer X; ///< [Cols, Feats] float32.
};

SpMMData makeSpMMData(const SpMMConfig &C);

/// Params: indptr [m+1] i64, indices [nnz] i64, val [nnz], x [Cols,Feats]
/// Inputs; y [m,Feats] Output. Row loop labeled "rows", segment loop
/// "spmm_seg". \p Nnz is the stored-entry count of the data the static
/// program is built for.
Func buildSpMM(const SpMMConfig &C, int64_t Nnz);

/// Shape-generic SpMM: runtime extents `m` (rows) and `nnz`. Cols/Feats
/// stay constant.
Func buildSpMMDyn(const SpMMConfig &C);

eager::Tensor spmmEager(const eager::Tensor &Val,
                        const eager::IndexTensor &RowIds,
                        const eager::IndexTensor &Cols, const eager::Tensor &X,
                        int64_t Rows);

void spmmNaive(const SpMMConfig &C, const SparseCSR &A, const float *X,
               float *Y);

//===----------------------------------------------------------------------===//
// SDDMM: sampled dense-dense matmul.
//   out[j] = val[j] * <Da[i,:], Db[indices[j],:]>  for j in seg(i)
//===----------------------------------------------------------------------===//

struct SDDMMConfig {
  int64_t Rows = 2048;
  int64_t Cols = 2048;
  int64_t Feats = 64;
  int64_t AvgDeg = 16;
  uint64_t Seed = 0xdd5eed;
};

struct SDDMMData {
  SparseCSR A;
  Buffer Da; ///< [Rows, Feats].
  Buffer Db; ///< [Cols, Feats].
};

SDDMMData makeSDDMMData(const SDDMMConfig &C);

/// Params: indptr, indices, val, a [Rows,Feats], b [Cols,Feats] Inputs;
/// out_val [nnz] Output — written at the segment iterator, the case whose
/// row-parallelism proof genuinely needs the indptr monotonicity facts.
Func buildSDDMM(const SDDMMConfig &C, int64_t Nnz);

Func buildSDDMMDyn(const SDDMMConfig &C);

eager::Tensor sddmmEager(const eager::Tensor &Da, const eager::Tensor &Db,
                         const eager::Tensor &Val,
                         const eager::IndexTensor &RowIds,
                         const eager::IndexTensor &Cols);

void sddmmNaive(const SDDMMConfig &C, const SparseCSR &A, const float *Da,
                const float *Db, float *Out);

//===----------------------------------------------------------------------===//
// Segment-softmax GNN aggregation: per destination node, softmax over the
// incoming edge logits, then aggregate source features.
//   w[j] = softmax_{j in seg(i)}(e[j]);  y[i,k] = sum_j w[j] * h[src[j],k]
//===----------------------------------------------------------------------===//

struct SegSoftmaxConfig {
  int64_t Nodes = 2048;
  int64_t Feats = 64;
  int64_t AvgDeg = 16;
  uint64_t Seed = 0x5e65eed;
};

struct SegSoftmaxData {
  SparseCSR G; ///< Graph in CSR by destination; Val carries edge logits.
  Buffer H;    ///< [Nodes, Feats] source features.
};

SegSoftmaxData makeSegSoftmaxData(const SegSoftmaxConfig &C);

/// Params: indptr, indices, e (logits), h Inputs; y [Nodes,Feats] Output.
/// Node loop labeled "nodes", segment loops "seg_max" / "seg_sum" /
/// "seg_agg". The softmax is max-stabilized; empty segments write zeros.
Func buildSegSoftmax(const SegSoftmaxConfig &C, int64_t Nnz);

Func buildSegSoftmaxDyn(const SegSoftmaxConfig &C);

/// Unstabilized eager softmax (exp / scatter-sum / gather / div), the
/// materializing operator chain. Matches the DSL program to float
/// round-off for logits of moderate magnitude.
eager::Tensor segSoftmaxEager(const eager::Tensor &Logit,
                              const eager::IndexTensor &RowIds,
                              const eager::IndexTensor &Src,
                              const eager::Tensor &H, int64_t Nodes);

void segSoftmaxNaive(const SegSoftmaxConfig &C, const SparseCSR &G,
                     const float *H, float *Y);

} // namespace workloads
} // namespace ft

#endif // FT_WORKLOADS_SPARSE_WORKLOADS_H
