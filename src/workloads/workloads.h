//===- workloads/workloads.h - The four paper workloads ----------*- C++ -*-===//
///
/// \file
/// The evaluation workloads of paper §6.1 — SubdivNet, Longformer, SoftRas,
/// and GAT — each in three implementations:
///
///   build*()   the FreeTensor DSL program (fine-grained control flow,
///              Figs. 3 and 5),
///   *Eager()   the operator-based baseline on EagerTensor (operator
///              chains with full materialization, Figs. 1(b) and 2(b)),
///   *Naive()   plain single-thread C++ loops (the "general-purpose
///              language without compiler optimization" baseline).
///
/// All three compute the same function on the same deterministic data, so
/// the benchmarks cross-check outputs before timing.
///
/// Model simplifications (documented in DESIGN.md): GAT uses a fixed-degree
/// graph and sum-normalized sigmoid attention; SoftRas uses an edge-cross-
/// product soft coverage with log-space aggregation (avoids a product
/// reduction); both keep the irregular access patterns the paper evaluates.
///
//===----------------------------------------------------------------------===//

#ifndef FT_WORKLOADS_WORKLOADS_H
#define FT_WORKLOADS_WORKLOADS_H

#include "interp/buffer.h"
#include "ir/func.h"
#include "opframework/eager.h"

namespace ft {
namespace workloads {

/// Deterministic xorshift PRNG in [-1, 1).
float frand(uint64_t &State);

//===----------------------------------------------------------------------===//
// SubdivNet: mesh convolution with circular difference (paper §2, Fig. 2/3).
//   y[i,k] = e[i,k] + sum_j e[adj[i,j],k]
//                   + sum_j |e[adj[i,j],k] - e[adj[i,(j+1)%3],k]|
//===----------------------------------------------------------------------===//

struct SubdivNetConfig {
  int64_t NFaces = 1024;
  int64_t Feats = 32;
};

struct SubdivNetData {
  Buffer E;   ///< [n, f] float32 face features.
  Buffer Adj; ///< [n, 3] int64 adjacent faces.
};

SubdivNetData makeSubdivNetData(const SubdivNetConfig &C);

/// Params: e [n,f] Input, adj [n,3] Input(i64), y [n,f] Output.
/// The outer loop is labeled "faces".
Func buildSubdivNet(const SubdivNetConfig &C);

/// Shape-generic SubdivNet: the face count is the runtime extent parameter
/// `n` (declared first), so one compiled kernel serves every mesh size.
/// Params: n i64 Input, e [n,f], adj [n,3], y [n,f]. Feats stays constant.
Func buildSubdivNetDyn(const SubdivNetConfig &C);

eager::Tensor subdivnetEager(const eager::Tensor &E,
                             const eager::IndexTensor &AdjFlat,
                             const SubdivNetConfig &C);

void subdivnetNaive(const SubdivNetConfig &C, const float *E,
                    const int64_t *Adj, float *Y);

//===----------------------------------------------------------------------===//
// Longformer: sliding-window attention (paper §1, Fig. 1/5).
//   For each token j: dot[k] = <Q[j], K[j+k]> over the window (masked at
//   the boundaries), attn = softmax(dot), y[j] = sum_k attn[k] * V[j+k].
//===----------------------------------------------------------------------===//

struct LongformerConfig {
  int64_t SeqLen = 512;
  int64_t Feats = 64;
  int64_t W = 32;
};

struct LongformerData {
  Buffer Q, K, V; ///< [n, d] float32.
};

LongformerData makeLongformerData(const LongformerConfig &C);

/// Params: Q, K, V Inputs, y [n,d] Output. The token loop is labeled
/// "tokens".
Func buildLongformer(const LongformerConfig &C);

/// Shape-generic Longformer: the sequence length is the runtime extent
/// parameter `n` — the ragged-batch case the specialization tier targets.
/// Params: n i64 Input, Q/K/V [n,d], y [n,d]. Feats and window constant.
Func buildLongformerDyn(const LongformerConfig &C);

eager::Tensor longformerEager(const eager::Tensor &Q, const eager::Tensor &K,
                              const eager::Tensor &V,
                              const LongformerConfig &C);

void longformerNaive(const LongformerConfig &C, const float *Q,
                     const float *K, const float *V, float *Y);

//===----------------------------------------------------------------------===//
// SoftRas: differentiable soft rasterization (paper §6.1).
//   For each pixel p and face f: a soft coverage from the minimum edge
//   cross-product, prob = sigmoid(d / sigma); the silhouette aggregates
//   in log space: img[p] = 1 - exp(sum_f ln(1 - prob)).
//===----------------------------------------------------------------------===//

struct SoftRasConfig {
  int64_t NFaces = 64;
  int64_t ImgH = 32;
  int64_t ImgW = 32;
  float Sigma = 0.05f;

  int64_t numPixels() const { return ImgH * ImgW; }
};

struct SoftRasData {
  Buffer Verts;  ///< [F, 3, 2] float32 projected triangle vertices.
  Buffer Px, Py; ///< [P] pixel coordinates.
};

SoftRasData makeSoftRasData(const SoftRasConfig &C);

/// Params: verts, px, py Inputs, img [P] Output. Pixel loop labeled
/// "pixels".
Func buildSoftRas(const SoftRasConfig &C);

/// Shape-generic SoftRas with two independent extent parameters: `nf`
/// (faces) and `np` (pixels). Params: nf, np i64 Inputs, verts [nf,3,2],
/// px/py/img [np].
Func buildSoftRasDyn(const SoftRasConfig &C);

/// The eager baseline operates on unpacked per-edge vertex vectors.
struct SoftRasEagerInputs {
  eager::Tensor Vx[3], Vy[3]; ///< [F] each.
  eager::Tensor Px, Py;       ///< [P].
};
SoftRasEagerInputs makeSoftRasEagerInputs(const SoftRasData &D,
                                          bool RequiresGrad);

eager::Tensor softrasEager(const SoftRasEagerInputs &In,
                           const SoftRasConfig &C);

void softrasNaive(const SoftRasConfig &C, const float *Verts,
                  const float *Px, const float *Py, float *Img);

//===----------------------------------------------------------------------===//
// GAT: graph attention layer on a fixed-degree graph (paper §6.1).
//   s1[i] = <a1, h[i]>, s2[i] = <a2, h[i]>;
//   p_im = sigmoid(s1[i] + s2[adj[i,m]]); alpha = p / sum_m p;
//   y[i] = sum_m alpha_im * h[adj[i,m]].
//===----------------------------------------------------------------------===//

struct GATConfig {
  int64_t NNodes = 2048;
  int64_t Feats = 32;
  int64_t Degree = 8;
};

struct GATData {
  Buffer H;      ///< [n, f] node features.
  Buffer Adj;    ///< [n, deg] int64 neighbors.
  Buffer A1, A2; ///< [f] attention vectors.
};

GATData makeGATData(const GATConfig &C);

/// Params: h, adj, a1, a2 Inputs, y [n,f] Output. Node loop labeled
/// "nodes".
Func buildGAT(const GATConfig &C);

/// Shape-generic GAT: the node count is the runtime extent parameter `n`;
/// the per-node projections become symbolically sized locals. Params:
/// n i64 Input, h [n,f], adj [n,deg], a1/a2 [f], y [n,f].
Func buildGATDyn(const GATConfig &C);

eager::Tensor gatEager(const eager::Tensor &H,
                       const eager::IndexTensor &AdjFlat,
                       const eager::IndexTensor &SelfFlat,
                       const eager::Tensor &A1, const eager::Tensor &A2,
                       const GATConfig &C);

void gatNaive(const GATConfig &C, const float *H, const int64_t *Adj,
              const float *A1, const float *A2, float *Y);

} // namespace workloads
} // namespace ft

#endif // FT_WORKLOADS_WORKLOADS_H
