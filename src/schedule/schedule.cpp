//===- schedule/schedule.cpp ----------------------------------------------===//

#include "schedule/schedule.h"

#include <algorithm>
#include <functional>
#include <set>

#include "analysis/bounds.h"
#include "analysis/vector_legality.h"
#include "ir/compare.h"
#include "ir/printer.h"
#include "pass/const_fold.h"
#include "pass/flatten.h"
#include "pass/replace.h"
#include "pass/simplify.h"
#include "support/stats.h"
#include "support/trace.h"
#include "support/string_utils.h"

using namespace ft;

namespace {

/// Unwraps a single-statement StmtSeq (the builder sometimes emits them).
Stmt unwrapSingle(const Stmt &S) {
  auto Seq = dyn_cast<StmtSeqNode>(S);
  if (Seq && Seq->Stmts.size() == 1)
    return unwrapSingle(Seq->Stmts[0]);
  return S;
}

/// Finds the StmtSeq that directly contains statement \p Id (treating
/// single-statement bodies as degenerate sequences is not needed: callers
/// requiring siblings fail cleanly when there is no parent sequence).
struct ParentSeq {
  Ref<StmtSeqNode> Seq;
  size_t Index = 0;
};

std::optional<ParentSeq> findParentSeq(const Stmt &Root, int64_t Id) {
  std::optional<ParentSeq> Found;
  auto Recurse = [&](const Stmt &Sub) {
    if (!Found)
      Found = findParentSeq(Sub, Id);
  };
  switch (Root->kind()) {
  case NodeKind::StmtSeq: {
    auto Seq = cast<StmtSeqNode>(Root);
    for (size_t I = 0; I < Seq->Stmts.size(); ++I) {
      if (Seq->Stmts[I]->Id == Id)
        return ParentSeq{Seq, I};
      Recurse(Seq->Stmts[I]);
    }
    return Found;
  }
  case NodeKind::VarDef:
    Recurse(cast<VarDefNode>(Root)->Body);
    return Found;
  case NodeKind::For:
    Recurse(cast<ForNode>(Root)->Body);
    return Found;
  case NodeKind::If: {
    auto I = cast<IfNode>(Root);
    Recurse(I->Then);
    if (I->Else)
      Recurse(I->Else);
    return Found;
  }
  default:
    return std::nullopt;
  }
}

/// Loops (outermost first) strictly enclosing statement \p Id.
std::vector<Ref<ForNode>> loopsEnclosing(const Stmt &Root, int64_t Id) {
  std::vector<Ref<ForNode>> Stack, Found;
  std::function<bool(const Stmt &)> Walk = [&](const Stmt &S) -> bool {
    if (S->Id == Id) {
      Found = Stack;
      return true;
    }
    switch (S->kind()) {
    case NodeKind::StmtSeq:
      for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
        if (Walk(Sub))
          return true;
      return false;
    case NodeKind::VarDef:
      return Walk(cast<VarDefNode>(S)->Body);
    case NodeKind::For: {
      auto F = cast<ForNode>(S);
      Stack.push_back(F);
      bool R = Walk(F->Body);
      if (!R)
        Stack.pop_back();
      return R;
    }
    case NodeKind::If: {
      auto I = cast<IfNode>(S);
      if (Walk(I->Then))
        return true;
      return I->Else != nullptr && Walk(I->Else);
    }
    default:
      return false;
    }
  };
  Walk(Root);
  return Found;
}

/// Sets the ForProperty of the loop with ID \p Id.
class PropertySetter : public Mutator {
public:
  PropertySetter(int64_t Id, ForProperty P) : Id(Id), P(P) {}

protected:
  Stmt visit(const ForNode *S) override {
    Stmt Out = Mutator::visit(S);
    if (S->Id == Id) {
      auto F = cast<ForNode>(Out);
      return makeFor(F->Iter, F->Begin, F->End, P, F->Body, F->Id);
    }
    return Out;
  }

private:
  int64_t Id;
  ForProperty P;
};

/// Marks the ReduceTo statements with the given IDs atomic.
class AtomicMarker : public Mutator {
public:
  explicit AtomicMarker(std::set<int64_t> Ids) : Ids(std::move(Ids)) {}

protected:
  Stmt visit(const ReduceToNode *S) override {
    Stmt Out = Mutator::visit(S);
    if (Ids.count(S->Id))
      cast<ReduceToNode>(Out)->Atomic = true;
    return Out;
  }

private:
  std::set<int64_t> Ids;
};

/// Rewrites the shape of one VarDef.
class ShapeSetter : public Mutator {
public:
  ShapeSetter(std::string Var, std::vector<Expr> Shape)
      : Var(std::move(Var)), Shape(std::move(Shape)) {}

protected:
  Stmt visit(const VarDefNode *S) override {
    Stmt Out = Mutator::visit(S);
    if (S->Name == Var) {
      auto D = cast<VarDefNode>(Out);
      Stmt New = makeVarDef(D->Name, TensorInfo{Shape, D->Info.Dtype},
                            D->ATy, D->MTy, D->Body, D->Id);
      cast<VarDefNode>(New)->NoGrad = D->NoGrad;
      return New;
    }
    return Out;
  }

private:
  std::string Var;
  std::vector<Expr> Shape;
};

Expr ceilDiv(const Expr &A, const Expr &B) {
  return makeFloorDiv(makeAdd(A, makeSub(B, makeIntConst(1))), B);
}

std::optional<int64_t> constInt(const Expr &E) {
  Expr F = constFold(E);
  if (auto I = dyn_cast<IntConstNode>(F))
    return I->Val;
  return std::nullopt;
}

} // namespace

//===----------------------------------------------------------------------===//
// Schedule basics
//===----------------------------------------------------------------------===//

Schedule::Schedule(Func F) : F(std::move(F)) {}

Result<int64_t> Schedule::findByLabel(const std::string &Label) const {
  Stmt S = findStmtByLabel(F.Body, Label);
  if (!S)
    return Result<int64_t>::error("no statement labeled '" + Label + "'");
  return S->Id;
}

Ref<ForNode> Schedule::getLoop(int64_t LoopId, Status *Err) const {
  Stmt S = findStmt(F.Body, LoopId);
  if (!S) {
    *Err = Status::error("no statement with ID " + std::to_string(LoopId));
    return nullptr;
  }
  auto L = dyn_cast<ForNode>(S);
  if (!L)
    *Err = Status::error("statement " + std::to_string(LoopId) +
                         " is not a loop");
  return L;
}

Stmt Schedule::replaceById(int64_t Id, const Stmt &Repl) {
  setBody(replaceStmt(F.Body, Id, Repl));
  return F.Body;
}

const DepAnalyzer &Schedule::deps() const {
  if (!DA || DAVersion != BodyVersion || stats::accelerationBypassed()) {
    DA = std::make_unique<DepAnalyzer>(F.Body);
    DAVersion = BodyVersion;
  } else {
    stats::counters().AnalyzerReuses.fetch_add(1, std::memory_order_relaxed);
  }
  return *DA;
}

void Schedule::setBody(Stmt Body) {
  F.Body = std::move(Body);
  ++BodyVersion;
}

IsParamFn Schedule::isParamFn() const {
  auto Defs = deps().accesses().Defs;
  return [Defs](const std::string &Name) {
    auto It = Defs.find(Name);
    return It != Defs.end() && It->second->ATy == AccessType::Input &&
           It->second->Info.Shape.empty() && isInt(It->second->Info.Dtype);
  };
}

bool Schedule::provably(const Expr &Cond) const {
  Expr Folded = constFold(Cond);
  if (auto B = dyn_cast<BoolConstNode>(Folded))
    return B->Val;
  ProofContext PC(isParamFn());
  return PC.provablyTrue(Folded);
}

std::vector<Ref<ForNode>> Schedule::perfectNest(int64_t LoopId) const {
  std::vector<Ref<ForNode>> Nest;
  Stmt S = findStmt(F.Body, LoopId);
  auto L = dyn_cast<ForNode>(S);
  while (L) {
    Nest.push_back(L);
    L = dyn_cast<ForNode>(unwrapSingle(L->Body));
  }
  return Nest;
}

void Schedule::cleanup() { setBody(simplify(F.Body)); }

//===----------------------------------------------------------------------===//
// Loop transformations
//===----------------------------------------------------------------------===//

Result<SplitIds> Schedule::splitImpl(int64_t LoopId, int64_t Factor) {
  Status Err;
  auto L = getLoop(LoopId, &Err);
  if (!L)
    return Err;
  if (Factor < 1)
    return Result<SplitIds>::error("split factor must be >= 1");

  auto Fresh = [&](const std::string &Base) {
    return ft::freshName(
        Base, [&](const std::string &N) { return isIterUsed(F.Body, N); });
  };
  std::string OuterIter = Fresh(L->Iter + ".out");
  std::string InnerIter = Fresh(L->Iter + ".in");

  Expr Len = constFold(L->len());
  Expr FactorE = makeIntConst(Factor);
  Expr NewIdx = makeAdd(L->Begin, makeAdd(makeMul(makeVar(OuterIter),
                                                  FactorE),
                                          makeVar(InnerIter)));
  Stmt Body = substituteIter(L->Body, L->Iter, NewIdx);
  Stmt Guarded = makeIf(makeLT(NewIdx, L->End), Body);
  Stmt Inner = makeFor(InnerIter, makeIntConst(0), FactorE, ForProperty{},
                       Guarded);
  Stmt Outer = makeFor(OuterIter, makeIntConst(0),
                       constFold(ceilDiv(Len, FactorE)), ForProperty{},
                       Inner, LoopId);
  replaceById(LoopId, Outer);
  return SplitIds{Outer->Id, Inner->Id};
}

Result<int64_t> Schedule::mergeImpl(int64_t OuterId, int64_t InnerId) {
  Status Err;
  auto Outer = getLoop(OuterId, &Err);
  if (!Outer)
    return Err;
  auto Inner = dyn_cast<ForNode>(unwrapSingle(Outer->Body));
  if (!Inner || Inner->Id != InnerId)
    return Result<int64_t>::error(
        "merge requires the two loops to be perfectly nested");
  if (isIterUsed(makeStore("_", {}, Inner->Begin), Outer->Iter) ||
      isIterUsed(makeStore("_", {}, Inner->End), Outer->Iter))
    return Result<int64_t>::error(
        "merge requires a rectangular nest (inner bounds must not use the "
        "outer iterator)");

  auto Fresh = ft::freshName(Outer->Iter + ".m", [&](const std::string &N) {
    return isIterUsed(F.Body, N);
  });
  Expr LenI = constFold(Inner->len());
  Expr LenO = constFold(Outer->len());
  Expr M = makeVar(Fresh);
  Stmt Body = Inner->Body;
  Body = substituteIter(Body, Inner->Iter,
                        makeAdd(Inner->Begin, makeMod(M, LenI)));
  Body = substituteIter(Body, Outer->Iter,
                        makeAdd(Outer->Begin, makeFloorDiv(M, LenI)));
  Stmt Merged = makeFor(Fresh, makeIntConst(0), constFold(makeMul(LenO, LenI)),
                        ForProperty{}, Body, OuterId);
  replaceById(OuterId, Merged);
  return Merged->Id;
}

Status Schedule::reorderImpl(const std::vector<int64_t> &Order) {
  if (Order.size() < 2)
    return Status::error("reorder needs at least two loops");

  // Identify the current outermost loop of the band: the one enclosing all
  // the others.
  int64_t OutermostId = -1;
  for (int64_t Id : Order) {
    std::vector<Ref<ForNode>> Enclosing = loopsEnclosing(F.Body, Id);
    bool EnclosedByAnother = false;
    for (const auto &L : Enclosing)
      if (std::find(Order.begin(), Order.end(), L->Id) != Order.end())
        EnclosedByAnother = true;
    if (!EnclosedByAnother)
      OutermostId = Id;
  }
  if (OutermostId < 0)
    return Status::error("reorder: could not identify the outermost loop");

  std::vector<Ref<ForNode>> Nest = perfectNest(OutermostId);
  size_t K = Order.size();
  if (Nest.size() < K)
    return Status::error("reorder: the loops do not form a perfect nest");
  Nest.resize(K);
  for (int64_t Id : Order) {
    bool InBand = false;
    for (const auto &L : Nest)
      InBand |= L->Id == Id;
    if (!InBand)
      return Status::error(
          "reorder: loop " + std::to_string(Id) +
          " is not in the perfectly nested band of the outermost loop");
  }

  // Rectangularity: no band loop's bounds may use another band iterator.
  for (const auto &L : Nest)
    for (const auto &M : Nest)
      if (isIterUsed(makeStore("_", {}, L->Begin), M->Iter) ||
          isIterUsed(makeStore("_", {}, L->End), M->Iter))
        return Status::error("reorder requires a rectangular band");

  // New position of each band loop.
  std::vector<size_t> NewPos(K);
  for (size_t I = 0; I < K; ++I) {
    auto It = std::find(Order.begin(), Order.end(), Nest[I]->Id);
    NewPos[I] = static_cast<size_t>(It - Order.begin());
  }

  // Legality: every feasible dependence direction vector over the band must
  // stay lexicographically positive after permutation.
  const DepAnalyzer &DA = deps();
  int64_t InnermostId = Nest.back()->Id;
  std::vector<const AccessPoint *> In, Boundary;
  for (const AccessPoint &P : DA.accesses().Points) {
    if (P.isInside(InnermostId))
      In.push_back(&P);
    else if (P.isInside(OutermostId))
      Boundary.push_back(&P);
  }
  // Accesses between band loops (e.g. reads in inner bounds) must not
  // participate in any dependence with the band.
  for (const AccessPoint *B : Boundary)
    for (const AccessPoint *A : In) {
      if (B->Var != A->Var)
        continue;
      if (B->Kind == AccessKind::Read && A->Kind == AccessKind::Read)
        continue;
      if (DA.mayDepend(*B, *A, {}) || DA.mayDepend(*A, *B, {}))
        return Status::error("reorder: dependence through loop bounds on `" +
                             A->Var + "`");
    }

  std::vector<IterRel> Combo(K, IterRel::Eq);
  std::function<Status(const AccessPoint &, const AccessPoint &, size_t)>
      Check = [&](const AccessPoint &E, const AccessPoint &L,
                  size_t Depth) -> Status {
    if (Depth == K) {
      // Reject combos where the dependence cannot exist in this direction.
      size_t FirstNonEq = K;
      for (size_t I = 0; I < K; ++I)
        if (Combo[I] != IterRel::Eq) {
          FirstNonEq = I;
          break;
        }
      if (FirstNonEq == K)
        return Status::success(); // Equal iterations: order preserved.
      if (Combo[FirstNonEq] != IterRel::Lt)
        return Status::success(); // Not an earlier-to-later direction.
      RelMap Rels;
      for (size_t I = 0; I < K; ++I)
        Rels[Nest[I]->Id] = Combo[I];
      if (!DA.mayDepend(E, L, Rels))
        return Status::success();
      // Feasible dependence: check the permuted direction vector.
      std::vector<IterRel> Permuted(K, IterRel::Eq);
      for (size_t I = 0; I < K; ++I)
        Permuted[NewPos[I]] = Combo[I];
      for (size_t I = 0; I < K; ++I) {
        if (Permuted[I] == IterRel::Eq)
          continue;
        if (Permuted[I] == IterRel::Lt)
          return Status::success();
        return Status::error("reorder would reverse a dependence on `" +
                             E.Var + "`");
      }
      return Status::success();
    }
    for (IterRel R : {IterRel::Eq, IterRel::Lt, IterRel::Gt}) {
      Combo[Depth] = R;
      if (Status S = Check(E, L, Depth + 1); !S)
        return S;
    }
    return Status::success();
  };

  for (const AccessPoint *E : In)
    for (const AccessPoint *L : In) {
      if (E->Var != L->Var)
        continue;
      if (E->Kind == AccessKind::Read && L->Kind == AccessKind::Read)
        continue;
      if (DepAnalyzer::sameOpReducePair(*E, *L))
        continue; // Commutative (Fig. 12(c)).
      if (Status S = Check(*E, *L, 0); !S)
        return S;
    }

  // Rebuild the band in the new order.
  Stmt Body = Nest.back()->Body;
  for (size_t I = K; I-- > 0;) {
    // Loop at new position I is the band loop whose NewPos == I.
    size_t Orig = 0;
    for (size_t J = 0; J < K; ++J)
      if (NewPos[J] == I)
        Orig = J;
    const auto &L = Nest[Orig];
    Body = makeFor(L->Iter, L->Begin, L->End, L->Property, Body, L->Id);
  }
  replaceById(OutermostId, Body);
  return Status::success();
}

Result<SplitIds> Schedule::fissionImpl(int64_t LoopId, int64_t AfterStmtId) {
  Status Err;
  auto L = getLoop(LoopId, &Err);
  if (!L)
    return Err;
  auto Seq = dyn_cast<StmtSeqNode>(L->Body);
  if (!Seq)
    return Result<SplitIds>::error(
        "fission requires the loop body to be a statement sequence");
  size_t Idx = Seq->Stmts.size();
  for (size_t I = 0; I < Seq->Stmts.size(); ++I)
    if (Seq->Stmts[I]->Id == AfterStmtId)
      Idx = I;
  if (Idx + 1 >= Seq->Stmts.size())
    return Result<SplitIds>::error(
        "fission point must be a non-final top-level child of the loop "
        "body");

  std::vector<Stmt> Part1(Seq->Stmts.begin(), Seq->Stmts.begin() + Idx + 1);
  std::vector<Stmt> Part2(Seq->Stmts.begin() + Idx + 1, Seq->Stmts.end());

  // Legality: no dependence from a part-2 access at an earlier iteration to
  // a part-1 access at a later one.
  const DepAnalyzer &DA = deps();
  auto InPart = [&](const AccessPoint &P, const std::vector<Stmt> &Part) {
    for (const Stmt &S : Part)
      if (P.isInside(S->Id))
        return true;
    return false;
  };
  RelMap Rels;
  for (const auto &Enc : loopsEnclosing(F.Body, LoopId))
    Rels[Enc->Id] = IterRel::Eq;
  Rels[LoopId] = IterRel::Lt;
  for (const AccessPoint &E : DA.accesses().Points) {
    if (!InPart(E, Part2))
      continue;
    for (const AccessPoint &La : DA.accesses().Points) {
      if (!InPart(La, Part1) || E.Var != La.Var)
        continue;
      if (E.Kind == AccessKind::Read && La.Kind == AccessKind::Read)
        continue;
      if (DepAnalyzer::sameOpReducePair(E, La))
        continue;
      if (DA.mayDepend(E, La, Rels))
        return Result<SplitIds>::error(
            "fission would reverse a loop-carried dependence on `" + E.Var +
            "`");
    }
  }

  Stmt For1 = makeFor(L->Iter, L->Begin, L->End, L->Property,
                      makeStmtSeq(std::move(Part1)), LoopId);
  Stmt For2 = makeFor(L->Iter, L->Begin, L->End, L->Property,
                      makeStmtSeq(std::move(Part2)));
  int64_t Id2 = For2->Id;
  replaceById(LoopId, makeStmtSeq({For1, For2}));
  return SplitIds{LoopId, Id2};
}

Result<int64_t> Schedule::fuseImpl(int64_t Loop1Id, int64_t Loop2Id) {
  Status Err;
  auto L1 = getLoop(Loop1Id, &Err);
  if (!L1)
    return Err;
  auto L2 = getLoop(Loop2Id, &Err);
  if (!L2)
    return Err;
  auto Parent = findParentSeq(F.Body, Loop1Id);
  if (!Parent || Parent->Index + 1 >= Parent->Seq->Stmts.size() ||
      Parent->Seq->Stmts[Parent->Index + 1]->Id != Loop2Id)
    return Result<int64_t>::error(
        "fuse requires two consecutive sibling loops");
  if (!provably(makeEQ(L1->len(), L2->len())))
    return Result<int64_t>::error(
        "fuse requires loops of provably equal length");

  // Legality: no dependence from an L1 access to an L2 access at a strictly
  // earlier (normalized) iteration.
  const DepAnalyzer &DA = deps();
  IsParamFn IsParam = isParamFn();
  RelMap Rels;
  for (const auto &Enc : loopsEnclosing(F.Body, Loop1Id))
    Rels[Enc->Id] = IterRel::Eq;
  for (const AccessPoint &E : DA.accesses().Points) {
    if (!E.isInsideLoop(Loop1Id))
      continue;
    for (const AccessPoint &La : DA.accesses().Points) {
      if (!La.isInsideLoop(Loop2Id) || E.Var != La.Var)
        continue;
      if (E.Kind == AccessKind::Read && La.Kind == AccessKind::Read)
        continue;
      if (DepAnalyzer::sameOpReducePair(E, La))
        continue;
      AffineSet S = DA.buildPairSet(E, La, Rels);
      // Add: (p.iter1 - begin1) > (q.iter2 - begin2).
      auto B1 = toLinear(L1->Begin, IsParam);
      auto B2 = toLinear(L2->Begin, IsParam);
      if (!B1 || !B2)
        return Result<int64_t>::error(
            "fuse: non-affine loop begins are unsupported");
      std::vector<std::string> Iters1, Iters2;
      for (const LoopAxis &Ax : E.Loops)
        Iters1.push_back(Ax.Iter);
      for (const LoopAxis &Ax : La.Loops)
        Iters2.push_back(Ax.Iter);
      LinearExpr P = LinearExpr::variable("p." + L1->Iter);
      LinearExpr Q = LinearExpr::variable("q." + L2->Iter);
      auto PN = LinearExpr::trySub(P, renameIters(*B1, "p.", Iters1));
      auto QN = LinearExpr::trySub(Q, renameIters(*B2, "q.", Iters2));
      if (!PN || !QN)
        return Result<int64_t>::error("fuse: bound arithmetic overflow");
      S.addLT(*QN, *PN);
      if (!S.isEmpty())
        return Result<int64_t>::error(
            "fuse would reverse a dependence on `" + E.Var + "`");
    }
  }

  Stmt Body2 = substituteIter(
      L2->Body, L2->Iter,
      makeAdd(L2->Begin, makeSub(makeVar(L1->Iter), L1->Begin)));
  Stmt Fused = makeFor(L1->Iter, L1->Begin, L1->End, ForProperty{},
                       makeStmtSeq({L1->Body, Body2}));
  int64_t FusedId = Fused->Id;

  std::vector<Stmt> NewStmts = Parent->Seq->Stmts;
  NewStmts[Parent->Index] = Fused;
  NewStmts.erase(NewStmts.begin() + Parent->Index + 1);
  replaceById(Parent->Seq->Id, makeStmtSeq(std::move(NewStmts),
                                           Parent->Seq->Id));
  setBody(constFold(F.Body));
  return FusedId;
}

Status Schedule::swapImpl(int64_t Stmt1Id, int64_t Stmt2Id) {
  auto Parent = findParentSeq(F.Body, Stmt1Id);
  if (!Parent || Parent->Index + 1 >= Parent->Seq->Stmts.size() ||
      Parent->Seq->Stmts[Parent->Index + 1]->Id != Stmt2Id)
    return Status::error("swap requires two adjacent sibling statements");

  const DepAnalyzer &DA = deps();
  for (const FoundDep &D : DA.betweenAtEqualIters(Stmt1Id, Stmt2Id))
    if (!D.SameOpReduce)
      return Status::error("swap would reverse a dependence on `" +
                           D.Earlier->Var + "`");

  std::vector<Stmt> NewStmts = Parent->Seq->Stmts;
  std::swap(NewStmts[Parent->Index], NewStmts[Parent->Index + 1]);
  replaceById(Parent->Seq->Id,
              makeStmtSeq(std::move(NewStmts), Parent->Seq->Id));
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Parallelizing transformations
//===----------------------------------------------------------------------===//

Status Schedule::parallelizeImpl(int64_t LoopId) {
  Status Err;
  auto L = getLoop(LoopId, &Err);
  if (!L)
    return Err;

  const DepAnalyzer &DA = deps();
  std::set<int64_t> ReduceIds;
  bool AnyDep = false;
  for (const FoundDep &D : DA.carriedBy(LoopId)) {
    AnyDep = true;
    if (!D.SameOpReduce)
      return Status::error("cannot parallelize: loop-carried dependence on "
                           "`" +
                           D.Earlier->Var + "`");
    ReduceIds.insert(D.Earlier->StmtId);
    ReduceIds.insert(D.Later->StmtId);
  }
  if (!ReduceIds.empty())
    setBody(AtomicMarker(ReduceIds)(F.Body));
  ForProperty P = L->Property;
  P.Parallel = true;
  P.NoDeps = !AnyDep;
  setBody(PropertySetter(LoopId, P)(F.Body));
  return Status::success();
}

Status Schedule::unrollImpl(int64_t LoopId, bool Full) {
  Status Err;
  auto L = getLoop(LoopId, &Err);
  if (!L)
    return Err;
  if (!Full) {
    ForProperty P = L->Property;
    P.Unroll = true;
    setBody(PropertySetter(LoopId, P)(F.Body));
    return Status::success();
  }
  auto Len = constInt(L->len());
  if (!Len)
    return Status::error("full unroll requires a constant loop length");
  if (*Len > 64)
    return Status::error("refusing to fully unroll a loop of length " +
                         std::to_string(*Len));
  std::vector<Stmt> Copies;
  for (int64_t I = 0; I < *Len; ++I) {
    Expr Iter = constFold(makeAdd(L->Begin, makeIntConst(I)));
    Copies.push_back(copyWithFreshIds(substituteIter(L->Body, L->Iter, Iter)));
  }
  replaceById(LoopId, makeStmtSeq(std::move(Copies)));
  setBody(flattenStmtSeq(constFold(F.Body)));
  return Status::success();
}

Status Schedule::unrollImpl(int64_t LoopId, int Factor) {
  Status Err;
  auto L = getLoop(LoopId, &Err);
  if (!L)
    return Err;
  if (Factor < 2 || Factor > 64)
    return Status::error("unroll factor must be in [2, 64], got " +
                         std::to_string(Factor));
  ForProperty P = L->Property;
  P.Unroll = true;
  P.UnrollFactor = Factor;
  setBody(PropertySetter(LoopId, P)(F.Body));
  return Status::success();
}

Status Schedule::blendImpl(int64_t LoopId) {
  Status Err;
  auto L = getLoop(LoopId, &Err);
  if (!L)
    return Err;
  auto Len = constInt(L->len());
  if (!Len)
    return Status::error("blend requires a constant loop length");
  if (*Len > 64)
    return Status::error("refusing to blend a loop of length " +
                         std::to_string(*Len));
  Stmt BodyS = unwrapSingle(L->Body);
  std::vector<Stmt> BodyStmts;
  if (auto Seq = dyn_cast<StmtSeqNode>(BodyS))
    BodyStmts = Seq->Stmts;
  else
    BodyStmts = {BodyS};

  // Blend == fission at every boundary + full unroll of each piece; check
  // the fission legality pairwise.
  const DepAnalyzer &DA = deps();
  RelMap Rels;
  for (const auto &Enc : loopsEnclosing(F.Body, LoopId))
    Rels[Enc->Id] = IterRel::Eq;
  Rels[LoopId] = IterRel::Lt;
  for (size_t J1 = 0; J1 < BodyStmts.size(); ++J1)
    for (size_t J2 = J1 + 1; J2 < BodyStmts.size(); ++J2)
      for (const AccessPoint &E : DA.accesses().Points) {
        if (!E.isInside(BodyStmts[J2]->Id))
          continue;
        for (const AccessPoint &La : DA.accesses().Points) {
          if (!La.isInside(BodyStmts[J1]->Id) || E.Var != La.Var)
            continue;
          if (E.Kind == AccessKind::Read && La.Kind == AccessKind::Read)
            continue;
          if (DepAnalyzer::sameOpReducePair(E, La))
            continue;
          if (DA.mayDepend(E, La, Rels))
            return Status::error(
                "blend would reverse a loop-carried dependence on `" + E.Var +
                "`");
        }
      }

  std::vector<Stmt> Out;
  for (const Stmt &S : BodyStmts)
    for (int64_t I = 0; I < *Len; ++I) {
      Expr Iter = constFold(makeAdd(L->Begin, makeIntConst(I)));
      Out.push_back(copyWithFreshIds(substituteIter(S, L->Iter, Iter)));
    }
  replaceById(LoopId, makeStmtSeq(std::move(Out)));
  setBody(flattenStmtSeq(constFold(F.Body)));
  return Status::success();
}

Status Schedule::vectorizeImpl(int64_t LoopId) {
  Status Err;
  auto L = getLoop(LoopId, &Err);
  if (!L)
    return Err;
  const DepAnalyzer &DA = deps();
  if (!DA.carriedBy(LoopId).empty())
    return Status::error(
        "cannot vectorize: the loop carries a dependence");
  ForProperty P = L->Property;
  P.Vectorize = true;
  P.NoDeps = true;
  setBody(PropertySetter(LoopId, P)(F.Body));
  return Status::success();
}

Status Schedule::vectorizeImpl(int64_t LoopId, int Width) {
  Status Err;
  auto L = getLoop(LoopId, &Err);
  if (!L)
    return Err;
  VectorLegality V = analyzeVectorLegality(deps(), L, Width, isParamFn());
  if (!V.Legal)
    return Status::error(V.Reason);
  ForProperty P = L->Property;
  P.Vectorize = true;
  P.VectorWidth = Width;
  // A reduction loop does carry (commuting) dependences; codegen must not
  // treat it as independent.
  P.NoDeps = !V.Reduction;
  setBody(PropertySetter(LoopId, P)(F.Body));
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Memory hierarchy transformations
//===----------------------------------------------------------------------===//

namespace {

/// Shared machinery of cache / cache_reduce: the Fig.-14 region analysis.
struct CacheRegion {
  std::vector<Expr> Lower;  ///< Per-dim start of the bounding box.
  std::vector<Expr> Extent; ///< Per-dim size.
};

Result<CacheRegion> analyzeRegion(const Stmt &Root,
                                  const AccessCollection &AC, int64_t StmtId,
                                  const std::string &Var,
                                  const Ref<VarDefNode> &Def,
                                  const IsParamFn &IsParam) {
  size_t OuterDepth = loopsEnclosing(Root, StmtId).size();
  size_t NDim = Def->Info.Shape.size();

  std::vector<std::vector<Expr>> Lows(NDim), Highs(NDim);
  bool Any = false;
  for (size_t I : AC.pointsOf(Var)) {
    const AccessPoint &P = AC.Points[I];
    if (!P.isInside(StmtId))
      continue;
    Any = true;
    if (P.WholeTensor || P.Indices.size() != NDim)
      return Result<CacheRegion>::error(
          "cache: opaque access to `" + Var + "`");
    for (size_t D = 0; D < NDim; ++D) {
      auto Lin = toLinear(P.Indices[D], IsParam);
      if (!Lin)
        return Result<CacheRegion>::error(
            "cache: non-affine index on `" + Var + "`");
      std::vector<IterRange> Inner;
      for (size_t I = OuterDepth; I < P.Loops.size(); ++I)
        Inner.push_back(
            {P.Loops[I].Iter, P.Loops[I].Begin, P.Loops[I].End});
      auto BP = eliminateIters(*Lin, Inner, IsParam);
      if (!BP)
        return Result<CacheRegion>::error(
            "cache: could not bound index of `" + Var + "`");
      Lows[D].push_back(linearToExpr(BP->Lower));
      Highs[D].push_back(linearToExpr(BP->Upper));
    }
  }
  if (!Any)
    return Result<CacheRegion>::error("cache: `" + Var +
                                      "` is not accessed in the statement");

  // Normalizes affine expressions like ((i + 3) - i) + 1 to 4.
  auto Normalize = [&](const Expr &E) {
    Expr Folded = constFold(E);
    if (auto Lin = toLinear(Folded, IsParam))
      return linearToExpr(*Lin);
    return Folded;
  };

  CacheRegion R;
  for (size_t D = 0; D < NDim; ++D) {
    Expr Lo = Lows[D][0], Hi = Highs[D][0];
    for (size_t I = 1; I < Lows[D].size(); ++I) {
      Lo = makeMin(Lo, Lows[D][I]);
      Hi = makeMax(Hi, Highs[D][I]);
    }
    R.Lower.push_back(Normalize(Lo));
    R.Extent.push_back(Normalize(makeAdd(makeSub(Hi, Lo), makeIntConst(1))));
  }
  return R;
}

/// Builds a copy nest: for c0, c1, ...: if (in-bounds) BodyFn(c...).
Stmt buildCopyNest(const Stmt &Root, const CacheRegion &R,
                   const Ref<VarDefNode> &Def,
                   const std::function<Stmt(const std::vector<Expr> &)>
                       &BodyFn) {
  size_t NDim = R.Extent.size();
  std::vector<std::string> Iters;
  std::vector<Expr> CacheIdx, BaseIdx;
  for (size_t D = 0; D < NDim; ++D) {
    std::string It = ft::freshName(
        "cc." + std::to_string(D),
        [&](const std::string &N) { return isIterUsed(Root, N); });
    Iters.push_back(It);
    CacheIdx.push_back(makeVar(It));
    BaseIdx.push_back(makeAdd(R.Lower[D], makeVar(It)));
  }
  Expr Guard = makeBoolConst(true);
  for (size_t D = 0; D < NDim; ++D) {
    Guard = makeLAnd(Guard, makeGE(BaseIdx[D], makeIntConst(0)));
    Guard = makeLAnd(Guard, makeLT(BaseIdx[D], Def->Info.Shape[D]));
  }
  Stmt Body = makeIf(constFold(Guard), BodyFn(CacheIdx));
  for (size_t D = NDim; D-- > 0;)
    Body = makeFor(Iters[D], makeIntConst(0), R.Extent[D], ForProperty{},
                   Body);
  return Body;
}

} // namespace

Result<std::string> Schedule::cacheImpl(int64_t StmtId, const std::string &Var,
                                    MemType MTy) {
  Stmt S0 = findStmt(F.Body, StmtId);
  if (!S0)
    return Result<std::string>::error("no statement with ID " +
                                      std::to_string(StmtId));
  auto Def = findVarDef(F.Body, Var);
  if (!Def)
    return Result<std::string>::error("no tensor named `" + Var + "`");

  IsParamFn IsParam = isParamFn();
  auto Region = analyzeRegion(F.Body, deps().accesses(), StmtId, Var, Def,
                              IsParam);
  if (!Region)
    return Region.status();

  std::string CacheName = ft::freshName(Var + ".cache", [&](const auto &N) {
    return findVarDef(F.Body, N) != nullptr;
  });
  size_t NDim = Region->Extent.size();

  bool Reads = false, Writes = false;
  {
    const AccessCollection &AC = deps().accesses();
    for (size_t I : AC.pointsOf(Var)) {
      const AccessPoint &P = AC.Points[I];
      if (!P.isInside(StmtId))
        continue;
      Reads |= P.Kind != AccessKind::Write;
      Writes |= P.Kind != AccessKind::Read;
    }
  }

  // Fill: cache[c] = var[lower + c]. Always emitted so a later write-back
  // restores untouched cells of the bounding box.
  Stmt Fill = buildCopyNest(
      F.Body, *Region, Def, [&](const std::vector<Expr> &C) {
        std::vector<Expr> Base;
        for (size_t D = 0; D < NDim; ++D)
          Base.push_back(makeAdd(Region->Lower[D], C[D]));
        return makeStore(CacheName, C,
                         makeLoad(Var, Base, Def->Info.Dtype));
      });

  // Redirect accesses inside the statement.
  Stmt Redirected = renameTensor(S0, Var, CacheName);
  Redirected =
      remapIndices(Redirected, CacheName, [&](const std::vector<Expr> &Idx) {
        std::vector<Expr> Out;
        for (size_t D = 0; D < NDim; ++D)
          Out.push_back(makeSub(Idx[D], Region->Lower[D]));
        return Out;
      });

  std::vector<Stmt> SeqStmts{Fill, Redirected};
  if (Writes) {
    Stmt WriteBack = buildCopyNest(
        F.Body, *Region, Def, [&](const std::vector<Expr> &C) {
          std::vector<Expr> Base;
          for (size_t D = 0; D < NDim; ++D)
            Base.push_back(makeAdd(Region->Lower[D], C[D]));
          return makeStore(Var, Base,
                           makeLoad(CacheName, C, Def->Info.Dtype));
        });
    SeqStmts.push_back(WriteBack);
  }
  (void)Reads;

  Stmt Wrapped = makeVarDef(CacheName,
                            TensorInfo{Region->Extent, Def->Info.Dtype},
                            AccessType::Cache, MTy,
                            makeStmtSeq(std::move(SeqStmts)));
  replaceById(StmtId, Wrapped);
  cleanup();
  return CacheName;
}

Result<std::string> Schedule::cacheReductionImpl(int64_t StmtId,
                                             const std::string &Var,
                                             MemType MTy) {
  Stmt S0 = findStmt(F.Body, StmtId);
  if (!S0)
    return Result<std::string>::error("no statement with ID " +
                                      std::to_string(StmtId));
  auto Def = findVarDef(F.Body, Var);
  if (!Def)
    return Result<std::string>::error("no tensor named `" + Var + "`");

  // All accesses inside must be ReduceTo with one operator.
  std::optional<ReduceOpKind> Op;
  {
    const AccessCollection &AC = deps().accesses();
    for (size_t I : AC.pointsOf(Var)) {
      const AccessPoint &P = AC.Points[I];
      if (!P.isInside(StmtId))
        continue;
      if (P.Kind != AccessKind::Reduce || (Op && *Op != P.RedOp))
        return Result<std::string>::error(
            "cache_reduce requires all accesses to be one reduction "
            "operator");
      Op = P.RedOp;
    }
  }
  if (!Op)
    return Result<std::string>::error("cache_reduce: `" + Var +
                                      "` is not accessed in the statement");

  IsParamFn IsParam = isParamFn();
  auto Region = analyzeRegion(F.Body, deps().accesses(), StmtId, Var, Def,
                              IsParam);
  if (!Region)
    return Region.status();

  std::string CacheName = ft::freshName(Var + ".red", [&](const auto &N) {
    return findVarDef(F.Body, N) != nullptr;
  });
  size_t NDim = Region->Extent.size();
  Expr Neutral = neutralValue(*Op, Def->Info.Dtype);

  Stmt Init = buildCopyNest(
      F.Body, *Region, Def, [&](const std::vector<Expr> &C) {
        return makeStore(CacheName, C, Neutral);
      });
  Stmt Redirected = renameTensor(S0, Var, CacheName);
  Redirected =
      remapIndices(Redirected, CacheName, [&](const std::vector<Expr> &Idx) {
        std::vector<Expr> Out;
        for (size_t D = 0; D < NDim; ++D)
          Out.push_back(makeSub(Idx[D], Region->Lower[D]));
        return Out;
      });
  Stmt Back = buildCopyNest(
      F.Body, *Region, Def, [&](const std::vector<Expr> &C) {
        std::vector<Expr> Base;
        for (size_t D = 0; D < NDim; ++D)
          Base.push_back(makeAdd(Region->Lower[D], C[D]));
        return makeReduceTo(Var, Base, *Op,
                            makeLoad(CacheName, C, Def->Info.Dtype));
      });

  Stmt Wrapped = makeVarDef(CacheName,
                            TensorInfo{Region->Extent, Def->Info.Dtype},
                            AccessType::Cache, MTy,
                            makeStmtSeq({Init, Redirected, Back}));
  replaceById(StmtId, Wrapped);
  cleanup();
  return CacheName;
}

Status Schedule::setMemTypeImpl(const std::string &Var, MemType MTy) {
  auto Def = findVarDef(F.Body, Var);
  if (!Def)
    return Status::error("no tensor named `" + Var + "`");
  if (Def->ATy != AccessType::Cache)
    return Status::error("set_mtype applies to Cache tensors only");
  Stmt New = makeVarDef(Def->Name, Def->Info, Def->ATy, MTy, Def->Body,
                        Def->Id);
  cast<VarDefNode>(New)->NoGrad = Def->NoGrad;
  replaceById(Def->Id, New);
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Memory layout transformations
//===----------------------------------------------------------------------===//

Status Schedule::varSplitImpl(const std::string &Var, int Dim, int64_t Factor) {
  auto Def = findVarDef(F.Body, Var);
  if (!Def)
    return Status::error("no tensor named `" + Var + "`");
  if (Def->ATy != AccessType::Cache)
    return Status::error("var_split applies to Cache tensors only");
  if (Dim < 0 || Dim >= static_cast<int>(Def->Info.Shape.size()))
    return Status::error("var_split: dimension out of range");
  auto Ext = constInt(Def->Info.Shape[Dim]);
  if (!Ext || *Ext % Factor != 0)
    return Status::error(
        "var_split requires a constant extent divisible by the factor");

  std::vector<Expr> NewShape;
  for (int D = 0; D < static_cast<int>(Def->Info.Shape.size()); ++D) {
    if (D == Dim) {
      NewShape.push_back(makeIntConst(*Ext / Factor));
      NewShape.push_back(makeIntConst(Factor));
    } else {
      NewShape.push_back(Def->Info.Shape[D]);
    }
  }
  setBody(remapIndices(F.Body, Var, [&](const std::vector<Expr> &Idx) {
    std::vector<Expr> Out;
    for (int D = 0; D < static_cast<int>(Idx.size()); ++D) {
      if (D == Dim) {
        Out.push_back(makeFloorDiv(Idx[D], makeIntConst(Factor)));
        Out.push_back(makeMod(Idx[D], makeIntConst(Factor)));
      } else {
        Out.push_back(Idx[D]);
      }
    }
    return Out;
  }));
  setBody(constFold(ShapeSetter(Var, NewShape)(F.Body)));
  return Status::success();
}

Status Schedule::varReorderImpl(const std::string &Var,
                            const std::vector<int> &Perm) {
  auto Def = findVarDef(F.Body, Var);
  if (!Def)
    return Status::error("no tensor named `" + Var + "`");
  if (Def->ATy != AccessType::Cache)
    return Status::error("var_reorder applies to Cache tensors only");
  size_t NDim = Def->Info.Shape.size();
  if (Perm.size() != NDim)
    return Status::error("var_reorder: permutation rank mismatch");
  std::vector<bool> Seen(NDim, false);
  for (int P : Perm) {
    if (P < 0 || P >= static_cast<int>(NDim) || Seen[P])
      return Status::error("var_reorder: invalid permutation");
    Seen[P] = true;
  }

  std::vector<Expr> NewShape;
  for (size_t D = 0; D < NDim; ++D)
    NewShape.push_back(Def->Info.Shape[Perm[D]]);
  setBody(remapIndices(F.Body, Var, [&](const std::vector<Expr> &Idx) {
    std::vector<Expr> Out;
    for (size_t D = 0; D < NDim; ++D)
      Out.push_back(Idx[Perm[D]]);
    return Out;
  }));
  setBody(ShapeSetter(Var, NewShape)(F.Body));
  return Status::success();
}

Status Schedule::varMergeImpl(const std::string &Var, int Dim) {
  auto Def = findVarDef(F.Body, Var);
  if (!Def)
    return Status::error("no tensor named `" + Var + "`");
  if (Def->ATy != AccessType::Cache)
    return Status::error("var_merge applies to Cache tensors only");
  if (Dim < 0 || Dim + 1 >= static_cast<int>(Def->Info.Shape.size()))
    return Status::error("var_merge: dimension out of range");

  Expr InnerExt = Def->Info.Shape[Dim + 1];
  std::vector<Expr> NewShape;
  for (int D = 0; D < static_cast<int>(Def->Info.Shape.size()); ++D) {
    if (D == Dim)
      NewShape.push_back(
          constFold(makeMul(Def->Info.Shape[D], InnerExt)));
    else if (D != Dim + 1)
      NewShape.push_back(Def->Info.Shape[D]);
  }
  setBody(remapIndices(F.Body, Var, [&](const std::vector<Expr> &Idx) {
    std::vector<Expr> Out;
    for (int D = 0; D < static_cast<int>(Idx.size()); ++D) {
      if (D == Dim)
        Out.push_back(makeAdd(makeMul(Idx[D], InnerExt), Idx[D + 1]));
      else if (D != Dim + 1)
        Out.push_back(Idx[D]);
    }
    return Out;
  }));
  setBody(constFold(ShapeSetter(Var, NewShape)(F.Body)));
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Others: as_lib, separate_tail
//===----------------------------------------------------------------------===//

namespace {

/// True if \p E is a Load of \p Var indexed exactly by the two iterators.
bool isLoad2D(const Expr &E, std::string *Var, std::string *I0,
              std::string *I1) {
  auto L = dyn_cast<LoadNode>(E);
  if (!L || L->Indices.size() != 2)
    return false;
  auto V0 = dyn_cast<VarNode>(L->Indices[0]);
  auto V1 = dyn_cast<VarNode>(L->Indices[1]);
  if (!V0 || !V1)
    return false;
  *Var = L->Var;
  *I0 = V0->Name;
  *I1 = V1->Name;
  return true;
}

bool isZeroConst(const Expr &E) {
  if (auto F = dyn_cast<FloatConstNode>(E))
    return F->Val == 0.0;
  if (auto I = dyn_cast<IntConstNode>(E))
    return I->Val == 0;
  return false;
}

} // namespace

Status Schedule::asLibImpl(int64_t LoopId) {
  // Builder-emitted indices contain "(0 + i)" offsets; fold them so the
  // structural matcher sees bare iterators.
  setBody(constFold(F.Body));
  Status Err;
  auto Li = getLoop(LoopId, &Err);
  if (!Li)
    return Err;
  auto Lj = dyn_cast<ForNode>(unwrapSingle(Li->Body));
  if (!Lj)
    return Status::error("as_lib: expected a perfectly nested i-j loop");

  // Body of j: either {C[i,j] = 0; for k: reduce} or just the k loop.
  Stmt JBody = unwrapSingle(Lj->Body);
  Ref<StoreNode> ZeroStore;
  Ref<ForNode> Lk;
  if (auto Seq = dyn_cast<StmtSeqNode>(JBody)) {
    if (Seq->Stmts.size() != 2)
      return Status::error("as_lib: unrecognized loop body");
    ZeroStore = dyn_cast<StoreNode>(unwrapSingle(Seq->Stmts[0]));
    Lk = dyn_cast<ForNode>(unwrapSingle(Seq->Stmts[1]));
  } else {
    Lk = dyn_cast<ForNode>(JBody);
  }
  if (!Lk)
    return Status::error("as_lib: no reduction loop found");
  auto Red = dyn_cast<ReduceToNode>(unwrapSingle(Lk->Body));
  if (!Red || Red->Op != ReduceOpKind::Add)
    return Status::error("as_lib: innermost statement must be `C += ...`");

  // C[i, j] indices.
  if (Red->Indices.size() != 2)
    return Status::error("as_lib: output must be 2-D");
  auto CI = dyn_cast<VarNode>(Red->Indices[0]);
  auto CJ = dyn_cast<VarNode>(Red->Indices[1]);
  if (!CI || !CJ || CI->Name != Li->Iter || CJ->Name != Lj->Iter)
    return Status::error("as_lib: output indices must be the loop "
                         "iterators");

  auto Mul = dyn_cast<BinaryNode>(Red->Value);
  if (!Mul || Mul->Op != BinOpKind::Mul)
    return Status::error("as_lib: reduction value must be a product");
  std::string AVar, BVar, A0, A1, B0, B1;
  if (!isLoad2D(Mul->LHS, &AVar, &A0, &A1) ||
      !isLoad2D(Mul->RHS, &BVar, &B0, &B1))
    return Status::error("as_lib: operands must be 2-D iterator loads");

  const std::string &I = Li->Iter, &J = Lj->Iter, &K = Lk->Iter;
  // Identify which operand carries i and which carries j; both carry k.
  auto UsesIK = [&](const std::string &X0, const std::string &X1) {
    return (X0 == I && X1 == K) || (X0 == K && X1 == I);
  };
  auto UsesKJ = [&](const std::string &X0, const std::string &X1) {
    return (X0 == K && X1 == J) || (X0 == J && X1 == K);
  };
  std::string AName, BName;
  bool TransA, TransB;
  if (UsesIK(A0, A1) && UsesKJ(B0, B1)) {
    AName = AVar;
    BName = BVar;
    TransA = A0 == K;
    TransB = B0 == J;
  } else if (UsesIK(B0, B1) && UsesKJ(A0, A1)) {
    AName = BVar;
    BName = AVar;
    TransA = B0 == K;
    TransB = A0 == J;
  } else {
    return Status::error("as_lib: operand index pattern is not a matmul");
  }

  // Validate zero store if present.
  if (ZeroStore) {
    if (ZeroStore->Var != Red->Var || !isZeroConst(ZeroStore->Value))
      return Status::error("as_lib: unrecognized initialization statement");
  }

  // Begins must be zero and extents must cover the tensors' full shapes.
  auto CDef = findVarDef(F.Body, Red->Var);
  auto ADef = findVarDef(F.Body, AName);
  auto BDef = findVarDef(F.Body, BName);
  if (!CDef || !ADef || !BDef)
    return Status::error("as_lib: tensors must be visible VarDefs");
  if (CDef->Info.Shape.size() != 2 || ADef->Info.Shape.size() != 2 ||
      BDef->Info.Shape.size() != 2)
    return Status::error("as_lib: tensors must be full 2-D arrays");
  for (const auto &L : {Li, Lj, Lk})
    if (!provably(makeEQ(L->Begin, makeIntConst(0))))
      return Status::error("as_lib: loop begins must be 0");
  Expr M = Li->End, N = Lj->End, Kx = Lk->End;
  auto DimOk = [&](const Ref<VarDefNode> &D, int Dim, const Expr &Want) {
    return provably(makeEQ(D->Info.Shape[Dim], Want));
  };
  if (!DimOk(CDef, 0, M) || !DimOk(CDef, 1, N) ||
      !DimOk(ADef, TransA ? 1 : 0, M) || !DimOk(ADef, TransA ? 0 : 1, Kx) ||
      !DimOk(BDef, TransB ? 1 : 0, Kx) || !DimOk(BDef, TransB ? 0 : 1, N))
    return Status::error(
        "as_lib: loop extents must cover the full tensors");

  std::vector<Stmt> Repl;
  if (ZeroStore) {
    // Keep a zero-initialization nest.
    Stmt Zero = makeStore(Red->Var, {makeVar(I), makeVar(J)},
                          ZeroStore->Value);
    Stmt ZJ = makeFor(J, makeIntConst(0), N, ForProperty{}, Zero);
    Repl.push_back(makeFor(I, makeIntConst(0), M, ForProperty{}, ZJ));
  }
  Repl.push_back(makeGemmCall(AName, BName, Red->Var, M, N, Kx, TransA,
                              TransB, CDef->Info.Dtype));
  replaceById(LoopId, makeStmtSeq(std::move(Repl)));
  return Status::success();
}

Result<SplitIds> Schedule::separateTailImpl(int64_t LoopId) {
  Status Err;
  auto L = getLoop(LoopId, &Err);
  if (!L)
    return Err;

  // Find the first If inside the loop body and the loops between.
  Ref<IfNode> Guard;
  std::vector<IterRange> Inner;
  std::function<bool(const Stmt &, std::vector<IterRange> &)> Find =
      [&](const Stmt &S, std::vector<IterRange> &Path) -> bool {
    switch (S->kind()) {
    case NodeKind::If:
      Guard = cast<IfNode>(S);
      Inner = Path;
      return true;
    case NodeKind::StmtSeq:
      for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
        if (Find(Sub, Path))
          return true;
      return false;
    case NodeKind::VarDef:
      return Find(cast<VarDefNode>(S)->Body, Path);
    case NodeKind::For: {
      auto F2 = cast<ForNode>(S);
      Path.push_back({F2->Iter, F2->Begin, F2->End});
      bool R = Find(F2->Body, Path);
      if (!R)
        Path.pop_back();
      return R;
    }
    default:
      return false;
    }
  };
  std::vector<IterRange> Path;
  if (!Find(L->Body, Path))
    return Result<SplitIds>::error("separate_tail: no guard found");

  // Decompose the condition into affine atoms (conjunction only).
  IsParamFn IsParam = isParamFn();
  std::vector<LinearExpr> Atoms;
  std::function<bool(const Expr &)> Gather = [&](const Expr &C) -> bool {
    auto B = dyn_cast<BinaryNode>(C);
    if (!B)
      return false;
    if (B->Op == BinOpKind::LAnd)
      return Gather(B->LHS) && Gather(B->RHS);
    if (!isCompareOp(B->Op) || B->Op == BinOpKind::EQ ||
        B->Op == BinOpKind::NE)
      return false;
    auto Lh = toLinear(B->LHS, IsParam);
    auto Rh = toLinear(B->RHS, IsParam);
    if (!Lh || !Rh)
      return false;
    // Normalize to GE-zero form.
    std::optional<LinearExpr> D;
    switch (B->Op) {
    case BinOpKind::LT: // L < R  ->  R - L - 1 >= 0
      D = LinearExpr::trySub(*Rh, *Lh);
      if (D)
        D->addConst(-1);
      break;
    case BinOpKind::LE:
      D = LinearExpr::trySub(*Rh, *Lh);
      break;
    case BinOpKind::GT:
      D = LinearExpr::trySub(*Lh, *Rh);
      if (D)
        D->addConst(-1);
      break;
    case BinOpKind::GE:
      D = LinearExpr::trySub(*Lh, *Rh);
      break;
    default:
      return false;
    }
    if (!D)
      return false;
    Atoms.push_back(*D);
    return true;
  };
  if (!Gather(Guard->Cond) || Atoms.empty())
    return Result<SplitIds>::error(
        "separate_tail: guard is not an affine conjunction");

  // For each atom a*t + R >= 0 (t the split iterator), compute the interval
  // of t where it holds for all inner iterations.
  Expr Lo = L->Begin, Hi = L->End;
  bool AnyUseful = false;
  for (const LinearExpr &Atom : Atoms) {
    int64_t A = Atom.coeffOf(L->Iter);
    if (A == 0)
      continue;
    LinearExpr R = Atom;
    R.setCoeff(L->Iter, 0);
    auto BP = eliminateIters(R, Inner, IsParam);
    if (!BP)
      continue;
    Expr MinR = linearToExpr(BP->Lower);
    if (A > 0) {
      // Holds for t >= ceil(-minR / A).
      Expr Cut = makeFloorDiv(
          makeAdd(makeUnary(UnOpKind::Neg, MinR), makeIntConst(A - 1)),
          makeIntConst(A));
      Lo = makeMax(Lo, Cut);
    } else {
      // Holds for t <= floor(minR / -A), i.e. t < floor(minR / -A) + 1.
      Expr Cut = makeAdd(makeFloorDiv(MinR, makeIntConst(-A)),
                         makeIntConst(1));
      Hi = makeMin(Hi, Cut);
    }
    AnyUseful = true;
  }
  if (!AnyUseful)
    return Result<SplitIds>::error(
        "separate_tail: the guard does not depend on the loop iterator");

  Lo = constFold(makeMin(makeMax(Lo, L->Begin), L->End));
  Hi = constFold(makeMax(makeMin(Hi, L->End), Lo));

  Stmt Head = makeFor(L->Iter, L->Begin, Lo, L->Property,
                      copyWithFreshIds(L->Body));
  Stmt Mid = makeFor(L->Iter, Lo, Hi, L->Property, L->Body, LoopId);
  Stmt Tail = makeFor(L->Iter, Hi, L->End, L->Property,
                      copyWithFreshIds(L->Body));
  SplitIds Ids{Head->Id, Tail->Id};
  replaceById(LoopId, makeStmtSeq({Head, Mid, Tail}));
  cleanup();
  return Ids;
}

//===----------------------------------------------------------------------===//
// Audit wrappers
//===----------------------------------------------------------------------===//
//
// Every public primitive funnels through trace::ScheduleAudit so the
// observability layer sees one schedule decision per call: primitive name,
// operand summary, applied/rejected with the legality reason, and the
// dependence-engine work the check cost. When tracing and auditing are both
// off the wrapper cost is a couple of short string builds — noise next to
// the dependence analysis every primitive runs.

namespace {

std::string fmtLoop(int64_t Id) {
  return trace::auditEnabled() ? "loop " + std::to_string(Id) : std::string();
}

std::string fmtLoops(int64_t A, int64_t B) {
  return trace::auditEnabled()
             ? "loops " + std::to_string(A) + ", " + std::to_string(B)
             : std::string();
}

std::string fmtIdList(const std::vector<int64_t> &Ids) {
  if (!trace::auditEnabled())
    return {};
  std::string Out = "loops [";
  for (size_t I = 0; I < Ids.size(); ++I)
    Out += (I ? ", " : "") + std::to_string(Ids[I]);
  return Out + "]";
}

std::string fmtVar(const std::string &Var) {
  return trace::auditEnabled() ? "var " + Var : std::string();
}

} // namespace

Result<SplitIds> Schedule::split(int64_t LoopId, int64_t Factor) {
  trace::ScheduleAudit A("split", fmtLoop(LoopId) + " factor " +
                                      std::to_string(Factor));
  auto R = splitImpl(LoopId, Factor);
  A.noteStmtIds({LoopId});
  if (R)
    A.noteStmtIds({R->First, R->Second});
  return A.finish(std::move(R));
}

Result<int64_t> Schedule::merge(int64_t OuterId, int64_t InnerId) {
  trace::ScheduleAudit A("merge", fmtLoops(OuterId, InnerId));
  auto R = mergeImpl(OuterId, InnerId);
  A.noteStmtIds({OuterId, InnerId});
  if (R)
    A.noteStmtIds({*R});
  return A.finish(std::move(R));
}

Status Schedule::reorder(const std::vector<int64_t> &Order) {
  trace::ScheduleAudit A("reorder", fmtIdList(Order));
  A.noteStmtIds(Order);
  return A.finish(reorderImpl(Order));
}

Result<SplitIds> Schedule::fission(int64_t LoopId, int64_t AfterStmtId) {
  trace::ScheduleAudit A("fission", fmtLoop(LoopId) + " after " +
                                        std::to_string(AfterStmtId));
  auto R = fissionImpl(LoopId, AfterStmtId);
  A.noteStmtIds({LoopId, AfterStmtId});
  if (R)
    A.noteStmtIds({R->First, R->Second});
  return A.finish(std::move(R));
}

Result<int64_t> Schedule::fuse(int64_t Loop1Id, int64_t Loop2Id) {
  trace::ScheduleAudit A("fuse", fmtLoops(Loop1Id, Loop2Id));
  auto R = fuseImpl(Loop1Id, Loop2Id);
  A.noteStmtIds({Loop1Id, Loop2Id});
  if (R)
    A.noteStmtIds({*R});
  return A.finish(std::move(R));
}

Status Schedule::swap(int64_t Stmt1Id, int64_t Stmt2Id) {
  trace::ScheduleAudit A("swap", fmtLoops(Stmt1Id, Stmt2Id));
  A.noteStmtIds({Stmt1Id, Stmt2Id});
  return A.finish(swapImpl(Stmt1Id, Stmt2Id));
}

Status Schedule::parallelize(int64_t LoopId) {
  trace::ScheduleAudit A("parallelize", fmtLoop(LoopId));
  A.noteStmtIds({LoopId});
  return A.finish(parallelizeImpl(LoopId));
}

Status Schedule::unroll(int64_t LoopId, bool Full) {
  trace::ScheduleAudit A("unroll", fmtLoop(LoopId) +
                                       (Full ? " (full)" : " (backend)"));
  A.noteStmtIds({LoopId});
  return A.finish(unrollImpl(LoopId, Full));
}

Status Schedule::unroll(int64_t LoopId, int Factor) {
  trace::ScheduleAudit A("unroll", fmtLoop(LoopId) + " factor " +
                                       std::to_string(Factor));
  A.noteStmtIds({LoopId});
  return A.finish(unrollImpl(LoopId, Factor));
}

Status Schedule::blend(int64_t LoopId) {
  trace::ScheduleAudit A("blend", fmtLoop(LoopId));
  A.noteStmtIds({LoopId});
  return A.finish(blendImpl(LoopId));
}

Status Schedule::vectorize(int64_t LoopId) {
  trace::ScheduleAudit A("vectorize", fmtLoop(LoopId));
  A.noteStmtIds({LoopId});
  return A.finish(vectorizeImpl(LoopId));
}

Status Schedule::vectorize(int64_t LoopId, int Width) {
  trace::ScheduleAudit A("vectorize", fmtLoop(LoopId) + " width " +
                                          std::to_string(Width));
  A.noteStmtIds({LoopId});
  return A.finish(vectorizeImpl(LoopId, Width));
}

Result<std::string> Schedule::cache(int64_t StmtId, const std::string &Var,
                                    MemType MTy) {
  trace::ScheduleAudit A("cache", fmtVar(Var) + " at stmt " +
                                      std::to_string(StmtId));
  A.noteStmtIds({StmtId});
  return A.finish(cacheImpl(StmtId, Var, MTy));
}

Result<std::string> Schedule::cacheReduction(int64_t StmtId,
                                             const std::string &Var,
                                             MemType MTy) {
  trace::ScheduleAudit A("cache_reduction", fmtVar(Var) + " at stmt " +
                                                std::to_string(StmtId));
  A.noteStmtIds({StmtId});
  return A.finish(cacheReductionImpl(StmtId, Var, MTy));
}

Status Schedule::setMemType(const std::string &Var, MemType MTy) {
  trace::ScheduleAudit A("set_mem_type", fmtVar(Var));
  return A.finish(setMemTypeImpl(Var, MTy));
}

Status Schedule::varSplit(const std::string &Var, int Dim, int64_t Factor) {
  trace::ScheduleAudit A("var_split", fmtVar(Var) + " dim " +
                                          std::to_string(Dim) + " factor " +
                                          std::to_string(Factor));
  return A.finish(varSplitImpl(Var, Dim, Factor));
}

Status Schedule::varReorder(const std::string &Var,
                            const std::vector<int> &Perm) {
  trace::ScheduleAudit A("var_reorder", fmtVar(Var));
  return A.finish(varReorderImpl(Var, Perm));
}

Status Schedule::varMerge(const std::string &Var, int Dim) {
  trace::ScheduleAudit A("var_merge", fmtVar(Var) + " dim " +
                                          std::to_string(Dim));
  return A.finish(varMergeImpl(Var, Dim));
}

Status Schedule::asLib(int64_t LoopId) {
  trace::ScheduleAudit A("as_lib", fmtLoop(LoopId));
  A.noteStmtIds({LoopId});
  return A.finish(asLibImpl(LoopId));
}

Result<SplitIds> Schedule::separateTail(int64_t LoopId) {
  trace::ScheduleAudit A("separate_tail", fmtLoop(LoopId));
  auto R = separateTailImpl(LoopId);
  A.noteStmtIds({LoopId});
  if (R)
    A.noteStmtIds({R->First, R->Second});
  return A.finish(std::move(R));
}
