//===- schedule/schedule.h - Dependence-aware transformations ----*- C++ -*-===//
///
/// \file
/// The user-facing schedule API: all seventeen AST transformations of the
/// paper's Table 1, each guarded by the dependence analysis of §4.2 so that
/// an illegal request is rejected with a diagnostic Status instead of
/// miscompiling ("we can aggressively try transformations without worrying
/// about their correctness", §4.3).
///
/// A Schedule owns a Func and mutates it transformation by transformation.
/// Statements are addressed by their stable IDs (or labels set in the
/// frontend); transformations that create loops return the new IDs.
///
//===----------------------------------------------------------------------===//

#ifndef FT_SCHEDULE_SCHEDULE_H
#define FT_SCHEDULE_SCHEDULE_H

#include <memory>

#include "analysis/affine.h"
#include "analysis/deps.h"
#include "ir/func.h"
#include "support/error.h"

namespace ft {

/// IDs of the two loops produced by split / separate_tail / fission.
struct SplitIds {
  int64_t First = -1;  ///< Outer loop (split) / head loop.
  int64_t Second = -1; ///< Inner loop (split) / tail loop (-1 if none).
};

/// See the file comment.
class Schedule {
public:
  explicit Schedule(Func F);

  /// The current (transformed) function.
  const Func &func() const { return F; }
  const Stmt &ast() const { return F.Body; }

  /// Looks up a statement by label (set via FunctionBuilder::loop).
  Result<int64_t> findByLabel(const std::string &Label) const;

  //===-- Loop transformations (Table 1, "Loop") -------------------------===//

  /// Splits loop \p LoopId into outer x inner with inner extent \p Factor.
  /// Always legal; a guard protects non-divisible extents (remove it with
  /// separate_tail or simplify).
  Result<SplitIds> split(int64_t LoopId, int64_t Factor);

  /// Merges two perfectly nested loops into one.
  Result<int64_t> merge(int64_t OuterId, int64_t InnerId);

  /// Reorders a perfectly nested band of loops into the given order.
  Status reorder(const std::vector<int64_t> &Order);

  /// Splits loop \p LoopId's body StmtSeq after top-level child
  /// \p AfterStmtId into two consecutive loops.
  Result<SplitIds> fission(int64_t LoopId, int64_t AfterStmtId);

  /// Fuses two consecutive sibling loops of provably equal length.
  Result<int64_t> fuse(int64_t Loop1Id, int64_t Loop2Id);

  /// Swaps two adjacent sibling statements.
  Status swap(int64_t Stmt1Id, int64_t Stmt2Id);

  //===-- Parallelizing transformations -----------------------------------===//

  /// Runs a loop with multiple threads. Loop-carried dependences are
  /// rejected unless they are same-operator reductions, which are lowered
  /// via atomics (paper Fig. 13(d)(e)).
  Status parallelize(int64_t LoopId);

  /// Fully unrolls a constant-extent loop (\p Full = true), or marks the
  /// loop for backend unrolling (\p Full = false).
  Status unroll(int64_t LoopId, bool Full = false);

  /// Marks the loop for backend unrolling by exactly \p Factor (emitted as
  /// `#pragma GCC unroll Factor`). Factor must be in [2, 64].
  Status unroll(int64_t LoopId, int Factor);

  /// Fully unrolls a constant-extent loop and interleaves the statement
  /// copies statement-by-statement.
  Status blend(int64_t LoopId);

  /// Marks a loop for SIMD execution; requires no carried dependences.
  Status vectorize(int64_t LoopId);

  /// Proves the loop vectorizable at \p Width lanes (analysis/
  /// vector_legality.h: access classification, dependence emptiness or the
  /// single-accumulator reduction pattern) and marks it for explicit-width
  /// lowering (`#pragma omp simd simdlen(Width)` with a scalar remainder).
  /// Rejections carry the analysis' reason into the audit log.
  Status vectorize(int64_t LoopId, int Width);

  //===-- Memory hierarchy transformations --------------------------------===//

  /// Reads the region of \p Var accessed inside statement \p StmtId into a
  /// new tensor placed in \p MTy before the statement, redirects accesses,
  /// and writes the region back afterwards if it is written (paper §4.2.3,
  /// Fig. 14). Returns the new tensor's name.
  Result<std::string> cache(int64_t StmtId, const std::string &Var,
                            MemType MTy);

  /// Like cache, but for accumulation: the new tensor starts at the
  /// reduction identity and is reduced back into \p Var afterwards. All
  /// accesses to \p Var inside must be ReduceTo with one operator.
  Result<std::string> cacheReduction(int64_t StmtId, const std::string &Var,
                                     MemType MTy);

  /// Changes where a Cache tensor is stored.
  Status setMemType(const std::string &Var, MemType MTy);

  //===-- Memory layout transformations ------------------------------------===//

  /// Splits dimension \p Dim of Cache tensor \p Var into (extent/Factor,
  /// Factor); the constant extent must be divisible.
  Status varSplit(const std::string &Var, int Dim, int64_t Factor);

  /// Permutes the dimensions of Cache tensor \p Var.
  Status varReorder(const std::string &Var, const std::vector<int> &Perm);

  /// Merges dimensions \p Dim and \p Dim+1 of Cache tensor \p Var.
  Status varMerge(const std::string &Var, int Dim);

  //===-- Others -----------------------------------------------------------===//

  /// Recognizes a (zero-init + triple-loop) matmul at loop \p LoopId over
  /// full 2-D tensors and replaces the accumulation with a GemmCall to the
  /// vendor-library runtime (paper's as_lib).
  Status asLib(int64_t LoopId);

  /// Splits the iteration range of loop \p LoopId at the points where the
  /// guard conditions inside flip, so the main body runs branch-free
  /// (paper's separate_tail). Returns head/tail loop IDs where created.
  Result<SplitIds> separateTail(int64_t LoopId);

  //===-- Introspection (used by tests and the auto-scheduler) -----------===//

  /// Finds the innermost perfectly nested band starting at \p LoopId.
  std::vector<Ref<ForNode>> perfectNest(int64_t LoopId) const;

  /// Runs simplify + flatten on the current function.
  void cleanup();

private:
  //===-- Primitive implementations ---------------------------------------===//
  // Each public primitive above is a thin wrapper that opens a
  // trace::ScheduleAudit (a "schedule/<name>" span plus a schedule decision
  // audit log entry recording applied/rejected, the legality reason, and
  // the dependence-counter delta) around the corresponding Impl below.
  Result<SplitIds> splitImpl(int64_t LoopId, int64_t Factor);
  Result<int64_t> mergeImpl(int64_t OuterId, int64_t InnerId);
  Status reorderImpl(const std::vector<int64_t> &Order);
  Result<SplitIds> fissionImpl(int64_t LoopId, int64_t AfterStmtId);
  Result<int64_t> fuseImpl(int64_t Loop1Id, int64_t Loop2Id);
  Status swapImpl(int64_t Stmt1Id, int64_t Stmt2Id);
  Status parallelizeImpl(int64_t LoopId);
  Status unrollImpl(int64_t LoopId, bool Full);
  Status unrollImpl(int64_t LoopId, int Factor);
  Status blendImpl(int64_t LoopId);
  Status vectorizeImpl(int64_t LoopId);
  Status vectorizeImpl(int64_t LoopId, int Width);
  Result<std::string> cacheImpl(int64_t StmtId, const std::string &Var,
                                MemType MTy);
  Result<std::string> cacheReductionImpl(int64_t StmtId,
                                         const std::string &Var, MemType MTy);
  Status setMemTypeImpl(const std::string &Var, MemType MTy);
  Status varSplitImpl(const std::string &Var, int Dim, int64_t Factor);
  Status varReorderImpl(const std::string &Var, const std::vector<int> &Perm);
  Status varMergeImpl(const std::string &Var, int Dim);
  Status asLibImpl(int64_t LoopId);
  Result<SplitIds> separateTailImpl(int64_t LoopId);

  Ref<ForNode> getLoop(int64_t LoopId, Status *Err) const;
  Stmt replaceById(int64_t Id, const Stmt &Repl);
  IsParamFn isParamFn() const;
  /// Proves Cond using only parameter knowledge (no loop context).
  bool provably(const Expr &Cond) const;

  /// The dependence analyzer for the current F.Body. Rebuilt lazily when a
  /// transformation has mutated the AST since the last query; legality
  /// checks of rejected transformations (which leave the AST untouched)
  /// therefore share one analyzer — the common case in auto-scheduling,
  /// where many candidate transformations are probed per AST version.
  const DepAnalyzer &deps() const;

  /// Replaces F.Body and invalidates the cached analyzer. Every AST
  /// mutation must go through here (or bump BodyVersion itself).
  void setBody(Stmt Body);

  Func F;
  /// Version stamp of F.Body; bumped on every mutation.
  uint64_t BodyVersion = 1;
  mutable std::unique_ptr<DepAnalyzer> DA;
  mutable uint64_t DAVersion = 0; ///< BodyVersion DA was built against.
};

} // namespace ft

#endif // FT_SCHEDULE_SCHEDULE_H
