//===- tests/grad_fuzz_test.cpp - Randomized AD property tests --------------===//
//
// Property: for any generated program in AD's supported class, grad() under
// EITHER tape strategy produces gradients that match central finite
// differences of the primal — and the two strategies match each other.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <gtest/gtest.h>

#include "autodiff/grad.h"
#include "frontend/libop.h"
#include "interp/interp.h"
#include "ir/printer.h"

using namespace ft;

namespace {

struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 2654435761u + 17) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() % uint64_t(Hi - Lo));
  }
  bool coin() { return next() & 1; }
};

struct GenProgram {
  Func F;
  std::map<std::string, std::vector<int64_t>> Shapes;
};

/// Generates a differentiable program: a per-row temporary built from a
/// random smooth expression, accumulated through a guarded reduction, and
/// consumed through random smooth post-ops.
GenProgram makeProgram(uint64_t Seed) {
  Rng R(Seed);
  const int64_t N = R.range(3, 7);
  const int64_t M = R.range(2, 5);
  FunctionBuilder B("gfuzz" + std::to_string(Seed));
  View A = B.input("a", {makeIntConst(N), makeIntConst(M)});
  View Bv = B.input("b", {makeIntConst(N)});
  View Y = B.output("y", {makeIntConst(N)});

  auto Smooth = [&](Expr V) {
    switch (R.range(0, 5)) {
    case 0:
      return ft::exp(V * makeFloatConst(0.3));
    case 1:
      return ft::sigmoid(V);
    case 2:
      return ft::tanh(V);
    case 3:
      return V * V + makeFloatConst(0.5);
    default:
      return ft::sqrt(V * V + makeFloatConst(1.0));
    }
  };

  B.loop("i", 0, N, [&](Expr I) {
    View Acc = B.local("acc", {});
    Acc.assign(0.0);
    B.loop("j", 0, M, [&](Expr J) {
      View T = B.local("t", {});
      Expr V = A[I][J].load() + (R.coin() ? Bv[I].load()
                                          : makeFloatConst(0.25));
      T.assign(Smooth(V));
      if (R.coin()) {
        Acc += T.load();
      } else {
        B.ifThen(J >= 1, [&] { Acc += T.load() * makeFloatConst(0.5); });
        B.ifThen(J < 1, [&] { Acc += T.load(); });
      }
    });
    Y[I].assign(Smooth(Acc.load()));
  });

  GenProgram P;
  P.F = B.build();
  P.Shapes = {{"a", {N, M}}, {"b", {N}}, {"y", {N}}};
  return P;
}

void fillBuf(Buffer &B, uint64_t Seed) {
  Rng R(Seed);
  for (int64_t I = 0; I < B.numel(); ++I)
    B.setF(I, 0.3 * std::sin(0.77 * double(I) + double(R.range(0, 6))));
}

double primalLoss(const GenProgram &P, std::map<std::string, Buffer> FD) {
  std::map<std::string, Buffer *> Args;
  for (auto &[N, B] : FD)
    Args[N] = &B;
  interpret(P.F, Args);
  double L = 0;
  for (int64_t I = 0; I < FD.at("y").numel(); ++I)
    L += FD.at("y").getF(I);
  return L;
}

class GradFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GradFuzz, GradMatchesFiniteDifferencesBothStrategies) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  GenProgram P = makeProgram(Seed);

  std::map<std::string, Buffer> Primal;
  Primal.emplace("a", Buffer(DataType::Float32, P.Shapes.at("a")));
  Primal.emplace("b", Buffer(DataType::Float32, P.Shapes.at("b")));
  Primal.emplace("y", Buffer(DataType::Float32, P.Shapes.at("y")));
  fillBuf(Primal.at("a"), Seed + 1);
  fillBuf(Primal.at("b"), Seed + 2);

  std::map<std::string, std::vector<float>> GradsByStrategy;
  for (TapeStrategy Strategy :
       {TapeStrategy::Selective, TapeStrategy::All}) {
    auto G = grad(P.F, {"a", "b"}, Strategy);
    ASSERT_TRUE(G.ok()) << "seed " << Seed << ": " << G.message();

    std::map<std::string, Buffer> Store = Primal;
    for (const std::string &T : G->Tapes) {
      auto D = findVarDef(G->Forward.Body, T);
      std::vector<int64_t> Shape;
      for (const Expr &E : D->Info.Shape)
        Shape.push_back(cast<IntConstNode>(E)->Val);
      Store.emplace(T, Buffer(DataType::Float32, Shape));
    }
    Buffer SeedBuf(DataType::Float32, P.Shapes.at("y"));
    for (int64_t I = 0; I < SeedBuf.numel(); ++I)
      SeedBuf.setF(I, 1.0);
    Store.emplace(G->SeedNames.at("y"), std::move(SeedBuf));
    for (const std::string &W : {"a", "b"})
      Store.emplace(G->GradNames.at(W),
                    Buffer(DataType::Float32, P.Shapes.at(W)));

    std::map<std::string, Buffer *> FwdArgs, BwdArgs;
    for (const std::string &Pp : G->Forward.Params)
      FwdArgs[Pp] = &Store.at(Pp);
    for (const std::string &Pp : G->Backward.Params)
      BwdArgs[Pp] = &Store.at(Pp);
    interpret(G->Forward, FwdArgs);
    interpret(G->Backward, BwdArgs);

    for (const std::string &W : {"a", "b"}) {
      const Buffer &GB = Store.at(G->GradNames.at(W));
      std::vector<float> &Vec =
          GradsByStrategy[W + (Strategy == TapeStrategy::All ? "/all"
                                                             : "/sel")];
      Vec.assign(GB.as<float>(), GB.as<float>() + GB.numel());

      // Finite differences at three probes.
      const double Eps = 1e-3;
      for (int64_t Probe :
           {int64_t(0), GB.numel() / 2, GB.numel() - 1}) {
        auto Shift = [&](double D) {
          std::map<std::string, Buffer> FD = Primal;
          FD.at(W).setF(Probe, FD.at(W).getF(Probe) + D);
          return primalLoss(P, std::move(FD));
        };
        double Numeric = (Shift(Eps) - Shift(-Eps)) / (2 * Eps);
        EXPECT_NEAR(GB.getF(Probe), Numeric, 3e-2)
            << "seed " << Seed << " wrt " << W << "[" << Probe << "]";
      }
    }
  }

  // The two strategies must agree exactly (same math, different storage).
  for (const std::string &W : {"a", "b"}) {
    const auto &Sel = GradsByStrategy.at(W + "/sel");
    const auto &All = GradsByStrategy.at(W + "/all");
    ASSERT_EQ(Sel.size(), All.size());
    for (size_t I = 0; I < Sel.size(); ++I)
      EXPECT_NEAR(Sel[I], All[I], 1e-4)
          << "seed " << Seed << " strategies diverge at " << W << "[" << I
          << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GradFuzz, ::testing::Range(1, 21));

} // namespace
