//===- tests/codegen_test.cpp - C++ emission & JIT execution --------------===//
//
// The generated native code is validated against the reference interpreter
// on the same inputs, including scheduled variants (parallel, atomic,
// vectorized, cached, gemm).
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "codegen/jit.h"
#include "frontend/libop.h"
#include "interp/interp.h"
#include "schedule/schedule.h"

using namespace ft;

namespace {

void seed(Buffer &B, double Phase) {
  for (int64_t I = 0; I < B.numel(); ++I)
    B.setF(I, std::sin(0.41 * double(I) + Phase));
}

/// Runs F via interpreter and via JIT and compares the named outputs.
void expectJitMatchesInterp(
    const Func &F, const std::map<std::string, std::vector<int64_t>> &Shapes,
    const std::vector<std::string> &Outputs, double Tol = 1e-5) {
  std::map<std::string, Buffer> SI, SJ;
  std::map<std::string, Buffer *> AI, AJ;
  double Phase = 0;
  for (const std::string &P : F.Params) {
    Phase += 1.0;
    SI.emplace(P, Buffer(DataType::Float32, Shapes.at(P)));
    seed(SI.at(P), Phase);
    SJ.emplace(P, Buffer(DataType::Float32, Shapes.at(P)));
    seed(SJ.at(P), Phase);
    AI[P] = &SI.at(P);
    AJ[P] = &SJ.at(P);
  }
  interpret(F, AI);
  auto K = Kernel::compile(F, "-O2");
  ASSERT_TRUE(K.ok()) << K.message();
  Status RunSt = K->run(AJ);
  ASSERT_TRUE(RunSt.ok()) << RunSt.message();
  for (const std::string &O : Outputs) {
    const Buffer &BI = SI.at(O), &BJ = SJ.at(O);
    for (int64_t I = 0; I < BI.numel(); ++I)
      EXPECT_NEAR(BI.as<float>()[I], BJ.as<float>()[I], Tol)
          << O << "[" << I << "]";
  }
}

TEST(CodegenTest, SourceShape) {
  FunctionBuilder B("axpy");
  View X = B.input("x", {makeIntConst(8)});
  View Y = B.inout("y", {makeIntConst(8)});
  B.loop("i", 0, 8, [&](Expr I) {
    Y[I].assign(Y[I].load() + X[I].load() * makeFloatConst(3.0));
  });
  Func F = B.build();
  std::string Src = generateCpp(F);
  EXPECT_NE(Src.find("extern \"C\" void v_fn_axpy"), std::string::npos);
  EXPECT_NE(Src.find("params[0]"), std::string::npos);
  EXPECT_NE(Src.find("for (int64_t v_i"), std::string::npos);
  EXPECT_EQ(kernelSymbol(F), "v_fn_axpy");
}

TEST(CodegenTest, ElementwiseMatches) {
  FunctionBuilder B("ew");
  View X = B.input("x", {makeIntConst(64)});
  View Y = B.output("y", {makeIntConst(64)});
  B.loop("i", 0, 64, [&](Expr I) {
    Y[I].assign(ft::exp(X[I].load()) * makeFloatConst(0.5) +
                ft::abs(X[I].load()));
  });
  expectJitMatchesInterp(B.build(), {{"x", {64}}, {"y", {64}}}, {"y"});
}

TEST(CodegenTest, ScalarLocalsAndReduction) {
  FunctionBuilder B("red");
  View X = B.input("x", {makeIntConst(33)});
  View Y = B.output("y", {});
  View T = B.local("acc", {});
  T.assign(0.0);
  B.loop("i", 0, 33, [&](Expr I) { T += X[I].load() * X[I].load(); });
  Y.assign(ft::sqrt(T.load()));
  expectJitMatchesInterp(B.build(), {{"x", {33}}, {"y", {}}}, {"y"});
}

TEST(CodegenTest, ParallelAtomicReduction) {
  FunctionBuilder B("par");
  View X = B.input("x", {makeIntConst(1000)});
  View Y = B.output("y", {});
  Y.assign(0.0);
  int64_t L = B.loop("i", 0, 1000, [&](Expr I) { Y += X[I].load(); });
  Func F = B.build();
  Schedule S(F);
  ASSERT_TRUE(S.parallelize(L).ok());
  expectJitMatchesInterp(S.func(), {{"x", {1000}}, {"y", {}}}, {"y"}, 1e-3);
}

TEST(CodegenTest, ScheduledLongformerKernel) {
  // The Fig. 5 kernel: scheduled with parallelize + cache, then compiled.
  const int64_t N = 32, D = 8, W = 3;
  FunctionBuilder B("lf");
  View Q = B.input("Q", {makeIntConst(N), makeIntConst(D)});
  View K = B.input("K", {makeIntConst(N), makeIntConst(D)});
  View Attn = B.output("attn", {makeIntConst(N), makeIntConst(2 * W + 1)});
  int64_t Lj = B.loop("j", 0, N, [&](Expr J) {
    View Dot = B.local("dot", {makeIntConst(2 * W + 1)});
    libop::zeros(B, Dot);
    B.loop("k", -W, W + 1, [&](Expr Kk) {
      B.ifThen(J + Kk >= 0 && J + Kk < N, [&] {
        B.loop("p", 0, D, [&](Expr P) {
          Dot[Kk + W] += Q[J][P].load() * K[J + Kk][P].load();
        });
      });
    });
    libop::softmax(B, Dot, Attn[J]);
  });
  Func F = B.build();
  Schedule S(F);
  ASSERT_TRUE(S.parallelize(Lj).ok());
  ASSERT_TRUE(S.setMemType("dot", MemType::CPULocal).ok());
  expectJitMatchesInterp(S.func(),
                         {{"Q", {N, D}}, {"K", {N, D}},
                          {"attn", {N, 2 * W + 1}}},
                         {"attn"});
}

TEST(CodegenTest, GemmCallLowersToRuntime) {
  FunctionBuilder B("mm");
  View A = B.input("A", {makeIntConst(9), makeIntConst(7)});
  View Bv = B.input("B", {makeIntConst(7), makeIntConst(5)});
  View C = B.output("C", {makeIntConst(9), makeIntConst(5)});
  int64_t Li = B.loop("i", 0, 9, [&](Expr I) {
    B.loop("j", 0, 5, [&](Expr J) {
      C[I][J].assign(0.0);
      B.loop("k", 0, 7,
             [&](Expr K) { C[I][J] += A[I][K].load() * Bv[K][J].load(); });
    });
  });
  Func F = B.build();
  Schedule S(F);
  ASSERT_TRUE(S.asLib(Li).ok());
  EXPECT_NE(generateCpp(S.func()).find("ft::rt::gemm"), std::string::npos);
  expectJitMatchesInterp(S.func(),
                         {{"A", {9, 7}}, {"B", {7, 5}}, {"C", {9, 5}}},
                         {"C"}, 1e-4);
}

TEST(CodegenTest, VectorizeAndUnrollPragmasCompile) {
  FunctionBuilder B("vec");
  View X = B.input("x", {makeIntConst(64)});
  View Y = B.output("y", {makeIntConst(64)});
  int64_t L = B.loop("i", 0, 64, [&](Expr I) {
    Y[I].assign(X[I].load() * makeFloatConst(2.0));
  });
  Func F = B.build();
  Schedule S(F);
  ASSERT_TRUE(S.vectorize(L).ok());
  expectJitMatchesInterp(S.func(), {{"x", {64}}, {"y", {64}}}, {"y"});
}

TEST(CodegenTest, MissingArgumentRejected) {
  FunctionBuilder B("m");
  View Y = B.output("y", {makeIntConst(4)});
  B.loop("i", 0, 4, [&](Expr I) { Y[I].assign(1.0); });
  auto K = Kernel::compile(B.build(), "-O0");
  ASSERT_TRUE(K.ok()) << K.message();
  Status St = K->run({});
  EXPECT_FALSE(St.ok());
  Buffer Wrong(DataType::Int64, {4});
  EXPECT_FALSE(K->run({{"y", &Wrong}}).ok());
}

} // namespace
