//===- tests/compare_test.cpp - Structural compare / hash / fingerprint ---===//
//
// Properties of ir/compare.h:
//   - deepEqual(Stmt) is alpha-renamed: programs differing only in variable
//     names compare equal, hash equal, and fingerprint equal.
//   - structuralHash agrees with deepEqual (equal trees never hash apart).
//   - The printer is an oracle: toString() ignores IDs and labels, so two
//     programs that print identically MUST be deepEqual.
//   - fingerprint(Func) is sensitive to every semantic knob (operators,
//     constants, loop properties, mem types, shapes, parameter order).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "frontend/builder.h"
#include "frontend/libop.h"
#include "ir/compare.h"
#include "ir/printer.h"
#include "schedule/schedule.h"

using namespace ft;

namespace {

/// Deterministic PRNG (same shape as the fuzz suite's).
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 2654435761u + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // [Lo, Hi)
    return Lo + static_cast<int64_t>(next() % uint64_t(Hi - Lo));
  }
  bool coin() { return next() & 1; }
};

/// Generates a random program covering StmtSeq / VarDef / For / If / Store /
/// ReduceTo, with every user-visible name prefixed by \p P — so the same
/// seed with two different prefixes yields alpha-renamed twins.
Func makeProg(uint64_t Seed, const std::string &P) {
  Rng R(Seed);
  const int64_t N = R.range(5, 11);
  const int64_t M = R.range(3, 8);
  FunctionBuilder B(P + "cmp" + std::to_string(Seed));
  View A = B.input(P + "a", {makeIntConst(N), makeIntConst(M)});
  View Bv = B.input(P + "b", {makeIntConst(N)});
  View Y = B.output(P + "y", {makeIntConst(N), makeIntConst(M)});
  View Z = B.output(P + "z", {makeIntConst(N)});

  B.loop(P + "i", 0, N, [&](Expr I) {
    B.loop(P + "j", 0, M, [&](Expr J) {
      Expr V = A[I][J].load() * makeFloatConst(0.5 + double(Seed % 3));
      if (R.coin())
        V = V + Bv[I].load();
      if (R.coin()) {
        Y[I][J].assign(V);
      } else {
        Y[I][J].assign(makeFloatConst(0.0));
        B.ifThen(I >= 1, [&] { Y[I][J] += V * makeFloatConst(0.25); });
      }
    });
  });

  B.loop(P + "i", 0, N, [&](Expr I) {
    View T = B.local(P + "t", {});
    T.assign(0.0);
    B.loop(P + "j", 0, M, [&](Expr J) {
      if (R.coin())
        T += Y[I][J].load();
      else
        T += ft::abs(A[I][J].load());
    });
    Z[I].assign(T.load() + Bv[I].load());
  });
  return B.build();
}

/// A small matmul; used to cover GemmCall via Schedule::asLib.
Func makeMatmul(const std::string &P) {
  const int64_t N = 8;
  FunctionBuilder B(P + "mm");
  View A = B.input(P + "A", {makeIntConst(N), makeIntConst(N)});
  View Bm = B.input(P + "B", {makeIntConst(N), makeIntConst(N)});
  View C = B.output(P + "C", {makeIntConst(N), makeIntConst(N)});
  B.loop(P + "i", 0, N, [&](Expr I) {
    B.loop(P + "j", 0, N, [&](Expr J) {
      C[I][J].assign(0.0);
      B.loop(P + "k", 0, N, [&](Expr K) {
        C[I][J] += A[I][K].load() * Bm[K][J].load();
      });
    });
  });
  return B.build();
}

int64_t firstLoopId(const Stmt &S) {
  if (auto L = dyn_cast<ForNode>(S))
    return L->Id;
  if (auto Seq = dyn_cast<StmtSeqNode>(S)) {
    for (const Stmt &Sub : Seq->Stmts)
      if (int64_t Id = firstLoopId(Sub); Id >= 0)
        return Id;
    return -1;
  }
  if (auto D = dyn_cast<VarDefNode>(S))
    return firstLoopId(D->Body);
  return -1;
}

} // namespace

TEST(CompareTest, ReflexiveAndDeterministicOverAllStmtKinds) {
  Func F = makeProg(7, "");
  EXPECT_TRUE(deepEqual(F.Body, F.Body));
  EXPECT_EQ(structuralHash(F.Body), structuralHash(F.Body));
  EXPECT_EQ(fingerprint(F), fingerprint(F));

  // GemmCall via asLib.
  Func Mm = makeMatmul("");
  Schedule S(Mm);
  ASSERT_TRUE(S.asLib(firstLoopId(S.ast())).ok());
  Func Lib = S.func();
  EXPECT_TRUE(deepEqual(Lib.Body, Lib.Body));
  EXPECT_EQ(structuralHash(Lib.Body), structuralHash(Lib.Body));
  // Lowering to the library call is a semantic change.
  EXPECT_NE(fingerprint(Mm), fingerprint(Lib));
}

TEST(CompareTest, AlphaRenamedProgramsCompareAndHashEqual) {
  for (uint64_t Seed : {1, 2, 3, 11, 29}) {
    Func A = makeProg(Seed, "");
    Func B = makeProg(Seed, "ren_");
    // The twins really are spelled differently...
    EXPECT_NE(toString(A.Body), toString(B.Body)) << "seed " << Seed;
    // ...yet compare, hash, and fingerprint identically.
    EXPECT_TRUE(deepEqual(A.Body, B.Body)) << "seed " << Seed;
    EXPECT_EQ(structuralHash(A.Body), structuralHash(B.Body))
        << "seed " << Seed;
    EXPECT_EQ(fingerprint(A), fingerprint(B)) << "seed " << Seed;
  }
}

TEST(CompareTest, SemanticDifferencesAreDetected) {
  Func Base = makeProg(5, "");
  uint64_t FP = fingerprint(Base);

  // A different program entirely.
  EXPECT_NE(FP, fingerprint(makeProg(6, "")));

  // A loop property: parallelize the first loop.
  {
    Schedule S(Base);
    ASSERT_TRUE(S.parallelize(firstLoopId(S.ast())).ok());
    Func Par = S.func();
    EXPECT_FALSE(deepEqual(Base.Body, Par.Body));
    EXPECT_NE(FP, fingerprint(Par));
  }

  // A memory type: move the temporary to CPULocal.
  {
    Schedule S(Base);
    ASSERT_TRUE(S.setMemType("t", MemType::CPULocal).ok());
    EXPECT_NE(FP, fingerprint(S.func()));
  }

  // Splitting a loop restructures the nest.
  {
    Schedule S(Base);
    if (S.split(firstLoopId(S.ast()), 2).ok())
      EXPECT_NE(FP, fingerprint(S.func()));
  }
}

TEST(CompareTest, FingerprintIgnoresFunctionName) {
  FunctionBuilder B1("name_one"), B2("name_two");
  for (FunctionBuilder *B : {&B1, &B2}) {
    View X = B->input("x", {makeIntConst(16)});
    View Y = B->output("y", {makeIntConst(16)});
    B->loop("i", 0, 16, [&](Expr I) {
      Y[I].assign(X[I].load() * makeFloatConst(2.0));
    });
  }
  EXPECT_EQ(fingerprint(B1.build()), fingerprint(B2.build()));
}

TEST(CompareTest, HashAgreesWithEqualityUnderFuzz) {
  // Printer oracle: toString ignores IDs/labels, so print-equal => deepEqual;
  // and deepEqual => hash-equal, fingerprint-equal. Checked across pairs of
  // random programs, their renamed twins, and scheduled variants.
  std::vector<Func> Pool;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    Pool.push_back(makeProg(Seed, ""));
    Pool.push_back(makeProg(Seed, "n_"));
    Schedule S(Pool.back());
    Rng R(Seed * 7919 + 13);
    // A few random transformations; rejected ones change nothing.
    for (int Step = 0; Step < 4; ++Step) {
      int64_t L = firstLoopId(S.ast());
      switch (R.range(0, 3)) {
      case 0:
        (void)S.split(L, R.range(2, 5));
        break;
      case 1:
        (void)S.parallelize(L);
        break;
      case 2:
        (void)S.vectorize(L);
        break;
      }
    }
    S.cleanup();
    Pool.push_back(S.func());
  }
  for (size_t I = 0; I < Pool.size(); ++I) {
    for (size_t J = I; J < Pool.size(); ++J) {
      const Func &A = Pool[I], &B = Pool[J];
      bool Eq = deepEqual(A.Body, B.Body);
      if (toString(A.Body) == toString(B.Body))
        EXPECT_TRUE(Eq) << "pool " << I << " vs " << J
                        << ": print-equal but not deepEqual";
      if (Eq) {
        EXPECT_EQ(structuralHash(A.Body), structuralHash(B.Body))
            << "pool " << I << " vs " << J << ": equal but hash apart";
        EXPECT_EQ(fingerprint(A), fingerprint(B))
            << "pool " << I << " vs " << J;
      }
    }
  }
}
