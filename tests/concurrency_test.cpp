//===- tests/concurrency_test.cpp - Cross-layer thread-safety -------------===//
//
// The thread-safety guarantees the serving runtime leans on, tested at the
// layer that provides each one:
//
//   - metrics:: counters are relaxed atomics: concurrent increments from
//     many threads lose nothing, and concurrent first-use registration of
//     the same / different names is safe;
//   - the kernel cache's in-process LRU survives a concurrent
//     lookup/insert/evict storm (same and distinct keys, tiny capacity)
//     with its bound intact and every handle it returns still runnable;
//   - N threads compiling the same program concurrently all succeed and
//     agree bit-for-bit (first-writer-wins insert, shared handles);
//   - two kernels with private thread pools executing concurrently under
//     Kernel::setMaxThreads caps still produce exact profile counts and
//     correct outputs — the oversubscription fix must not break the
//     per-chunk (non-atomic, worker-indexed) profile slots.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <gtest/gtest.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "codegen/profile.h"
#include "frontend/builder.h"
#include "schedule/schedule.h"
#include "support/metrics.h"

using namespace ft;

namespace {

Func makeAxpy(double Scale, const std::string &Prefix = "") {
  FunctionBuilder B(Prefix + "axpy");
  View X = B.input(Prefix + "x", {makeIntConst(256)});
  View Y = B.output(Prefix + "y", {makeIntConst(256)});
  B.loop(Prefix + "i", 0, 256, [&](Expr I) {
    Y[I].assign(X[I].load() * makeFloatConst(Scale) + makeFloatConst(1.0));
  });
  return B.build();
}

std::vector<float> runOnce(const Kernel &K, const Func &F) {
  Buffer X(DataType::Float32, {256}), Y(DataType::Float32, {256});
  for (int64_t I = 0; I < X.numel(); ++I)
    X.setF(I, std::sin(0.37 * double(I)));
  std::map<std::string, Buffer *> Args = {{F.Params[0], &X},
                                          {F.Params[1], &Y}};
  Status S = K.run(Args);
  EXPECT_TRUE(S.ok()) << S.message();
  return std::vector<float>(Y.as<float>(), Y.as<float>() + Y.numel());
}

class ConcurrencyTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Tmpl[] = "/tmp/ftconc.XXXXXX";
    ASSERT_NE(::mkdtemp(Tmpl), nullptr);
    Dir = Tmpl;
    ::setenv("FT_CACHE_DIR", Dir.c_str(), 1);
    ::setenv("FT_CACHE", "1", 1);
    kernel_cache::memReset();
  }
  void TearDown() override {
    ::unsetenv("FT_CACHE_DIR");
    ::unsetenv("FT_CACHE");
    kernel_cache::memReset();
    std::system(("rm -rf '" + Dir + "'").c_str());
  }
  std::string Dir;
};

} // namespace

//===--------------------------------------------------------------------===//
// Metrics counters under contention.
//===--------------------------------------------------------------------===//

TEST(MetricsConcurrencyTest, ConcurrentIncrementsAreExact) {
  metrics::Counter &C = metrics::counter("test/concurrent_adds");
  const uint64_t Before = C.load();

  constexpr int kThreads = 8;
  constexpr uint64_t kAdds = 100000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < kThreads; ++T)
    Ts.emplace_back([] {
      // Resolve inside the thread: registration itself must be racy-safe.
      metrics::Counter &Mine = metrics::counter("test/concurrent_adds");
      for (uint64_t I = 0; I < kAdds; ++I)
        Mine.fetch_add(1);
    });
  for (std::thread &T : Ts)
    T.join();

  EXPECT_EQ(C.load() - Before, kThreads * kAdds);
}

TEST(MetricsConcurrencyTest, ConcurrentRegistrationYieldsStableRefs) {
  constexpr int kThreads = 8;
  std::vector<metrics::Counter *> Seen(kThreads, nullptr);
  std::vector<std::thread> Ts;
  for (int T = 0; T < kThreads; ++T)
    Ts.emplace_back([T, &Seen] {
      // Everyone races to create a mix of names; the shared one must
      // resolve to a single instance for all threads.
      metrics::counter("test/reg_private_" + std::to_string(T)).fetch_add(1);
      Seen[T] = &metrics::counter("test/reg_shared");
      Seen[T]->fetch_add(1);
    });
  for (std::thread &T : Ts)
    T.join();

  for (int T = 1; T < kThreads; ++T)
    EXPECT_EQ(Seen[T], Seen[0]);
  EXPECT_GE(metrics::counter("test/reg_shared").load(), (uint64_t)kThreads);
}

//===--------------------------------------------------------------------===//
// Kernel-cache memory tier under a lookup/insert/evict storm.
//===--------------------------------------------------------------------===//

TEST_F(ConcurrencyTest, MemTierSurvivesConcurrentStorm) {
  // A few real kernels to shuffle through the LRU; handles are copyable,
  // so many logical keys can share one loaded library.
  std::vector<Kernel> Kernels;
  Func F = makeAxpy(3.0);
  std::vector<float> Want;
  for (double Scale : {3.0, 4.0, 5.0}) {
    auto K = Kernel::compile(makeAxpy(Scale), "-O1");
    ASSERT_TRUE(K.ok()) << K.message();
    Kernels.push_back(*K);
    if (Scale == 3.0)
      Want = runOnce(*K, F);
  }

  constexpr size_t kCap = 8;
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  constexpr uint64_t kKeySpace = 32; // 4x the capacity => constant eviction
  std::atomic<bool> Failed{false};

  std::vector<std::thread> Ts;
  for (int T = 0; T < kThreads; ++T)
    Ts.emplace_back([T, &Kernels, &Failed] {
      uint64_t S = 0x9e3779b9u * (T + 1);
      for (int I = 0; I < kIters && !Failed.load(); ++I) {
        S ^= S << 13;
        S ^= S >> 7;
        S ^= S << 17;
        uint64_t Key = S % kKeySpace;
        switch (S % 4) {
        case 0:
        case 1: // lookups dominate, as in real serving
          (void)kernel_cache::memLookup(Key);
          break;
        case 2:
          kernel_cache::memInsert(Key, Kernels[Key % Kernels.size()], kCap);
          break;
        default:
          if (kernel_cache::memSize() > kCap)
            Failed.store(true);
          break;
        }
      }
    });
  for (std::thread &T : Ts)
    T.join();

  EXPECT_FALSE(Failed.load()) << "LRU bound violated under concurrency";
  EXPECT_LE(kernel_cache::memSize(), kCap);

  // Any handle still resident must be runnable (no use-after-eviction).
  for (uint64_t Key = 0; Key < kKeySpace; ++Key)
    if (std::optional<Kernel> K = kernel_cache::memLookup(Key))
      if (Key % Kernels.size() == 0) {
        std::vector<float> Got = runOnce(*K, F);
        EXPECT_EQ(0, std::memcmp(Want.data(), Got.data(),
                                 Want.size() * sizeof(float)));
        break;
      }
}

TEST_F(ConcurrencyTest, ConcurrentCompilesOfSameProgramAgree) {
  Func F = makeAxpy(6.0);
  constexpr int kThreads = 4;
  std::vector<std::optional<Kernel>> Ks(kThreads);
  std::vector<std::string> Errs(kThreads);

  std::vector<std::thread> Ts;
  for (int T = 0; T < kThreads; ++T)
    Ts.emplace_back([T, &F, &Ks, &Errs] {
      auto R = Kernel::compile(F, "-O1");
      if (R.ok())
        Ks[T] = *R;
      else
        Errs[T] = R.message();
    });
  for (std::thread &T : Ts)
    T.join();

  std::vector<float> Want;
  for (int T = 0; T < kThreads; ++T) {
    ASSERT_TRUE(Ks[T].has_value()) << Errs[T];
    std::vector<float> Got = runOnce(*Ks[T], F);
    if (T == 0)
      Want = Got;
    else
      EXPECT_EQ(0, std::memcmp(Want.data(), Got.data(),
                               Want.size() * sizeof(float)));
  }
  // Exactly one resident entry for the shared program afterwards.
  EXPECT_LE(kernel_cache::memSize(), 1u);
}

//===--------------------------------------------------------------------===//
// Two concurrent kernels under a host thread budget (oversubscription fix).
//===--------------------------------------------------------------------===//

TEST_F(ConcurrencyTest, TwoCappedProfiledKernelsKeepExactCounts) {
  // Each kernel's pool would size itself to 4 from the environment; the
  // host caps each at 2 so the pair stays within a 4-thread budget.
  setenv("FT_NUM_THREADS", "4", 1);

  const int64_t N = 4096;
  struct Ctx {
    Func F;
    int64_t LoopId = 0;
    std::optional<Kernel> K;
  };
  std::vector<Ctx> Cs(2);
  for (int Idx = 0; Idx < 2; ++Idx) {
    FunctionBuilder B("cap" + std::to_string(Idx));
    View A = B.input("a", {makeIntConst(N)});
    View Y = B.output("y", {makeIntConst(N)});
    int64_t L = B.loop(
        "i", 0, N,
        [&](Expr I) {
          Y[I].assign(A[I].load() * makeFloatConst(2.0 + Idx) +
                      makeFloatConst(1.0));
        },
        "rows");
    Cs[Idx].F = B.build();
    Cs[Idx].LoopId = L;

    Schedule S(Cs[Idx].F);
    ASSERT_TRUE(S.parallelize(L).ok());
    CodegenOptions Opts;
    Opts.Profile = true;
    auto K = Kernel::compile(S.func(), Opts, "-O1");
    ASSERT_TRUE(K.ok()) << K.message();
    // The serving executor applies the same cap to every kernel it loads.
    EXPECT_TRUE(K->setMaxThreads(2));
    Cs[Idx].K = *K;
  }
  unsetenv("FT_NUM_THREADS");

  const uint64_t Runs = 20;
  std::vector<std::thread> Ts;
  for (int Idx = 0; Idx < 2; ++Idx)
    Ts.emplace_back([&, Idx] {
      Buffer A(DataType::Float32, {N}), Y(DataType::Float32, {N});
      for (int64_t I = 0; I < N; ++I)
        A.setF(I, float(I) * 0.25f);
      std::map<std::string, Buffer *> Args = {{"a", &A}, {"y", &Y}};
      for (uint64_t R = 0; R < Runs; ++R)
        ASSERT_TRUE(Cs[Idx].K->run(Args).ok());
      for (int64_t I = 0; I < N; ++I)
        ASSERT_NEAR(Y.as<float>()[I],
                    float(I) * 0.25f * float(2.0 + Idx) + 1.0f, 1e-4);
    });
  for (std::thread &T : Ts)
    T.join();

  // Both kernels ran concurrently, each capped; the per-chunk profile
  // slots and the rt counters must still be exact per kernel.
  for (int Idx = 0; Idx < 2; ++Idx) {
    profile::KernelProfile Prof = Cs[Idx].K->profileNow();
    const profile::LoopSample *Loop = Prof.sample(Cs[Idx].LoopId);
    ASSERT_NE(Loop, nullptr);
    EXPECT_EQ(Loop->Calls, Runs);
    EXPECT_EQ(Loop->Iters, Runs * uint64_t(N));

    KernelRtStats St = Cs[Idx].K->rtStats();
    ASSERT_TRUE(St.Valid);
    EXPECT_EQ(St.Invocations, Runs);
    EXPECT_EQ(St.ParallelFors, Runs);
    EXPECT_EQ(St.ParallelIters, Runs * uint64_t(N));
  }
}

TEST_F(ConcurrencyTest, SetMaxThreadsToOneStillComputesCorrectly) {
  setenv("FT_NUM_THREADS", "4", 1);
  Func F = makeAxpy(2.0);
  Schedule S(F);
  // makeAxpy's single loop is the only one; find and parallelize it.
  int64_t LoopId = -1;
  std::function<void(const Stmt &)> Find = [&](const Stmt &St) {
    if (auto L = dyn_cast<ForNode>(St)) {
      LoopId = L->Id;
      return;
    }
    if (auto Seq = dyn_cast<StmtSeqNode>(St))
      for (const Stmt &Sub : Seq->Stmts)
        Find(Sub);
    if (auto D = dyn_cast<VarDefNode>(St))
      Find(D->Body);
  };
  Find(F.Body);
  ASSERT_GE(LoopId, 0);
  ASSERT_TRUE(S.parallelize(LoopId).ok());

  auto K = Kernel::compile(S.func(), CodegenOptions{}, "-O1");
  unsetenv("FT_NUM_THREADS");
  ASSERT_TRUE(K.ok()) << K.message();
  ASSERT_TRUE(K->setMaxThreads(1)); // degenerate cap: serial execution

  std::vector<float> Got = runOnce(*K, F);
  for (int64_t I = 0; I < 256; ++I)
    EXPECT_NEAR(Got[size_t(I)], std::sin(0.37 * double(I)) * 2.0 + 1.0, 1e-5);
}

//===----------------------------------------------------------------------===//
// Histogram record path under contention (telemetry-plane PR): the
// wait-free record() loses nothing — counts, sums, and bucket totals are
// exact across racing threads, and min/max converge to the true extremes.
//===----------------------------------------------------------------------===//

TEST_F(ConcurrencyTest, HistogramConcurrentRecordsAreExact) {
  metrics::Histogram &H = metrics::histogram("test/conc_hist");
  H.reset();

  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < kThreads; ++T)
    Ts.emplace_back([T, &H] {
      // Thread T records values T*1000 .. T*1000+kPerThread-1: every
      // thread hits a distinct range, together spanning many buckets.
      for (uint64_t I = 0; I < kPerThread; ++I)
        H.record(uint64_t(T) * 1000 + I);
    });
  for (std::thread &T : Ts)
    T.join();

  metrics::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, uint64_t(kThreads) * kPerThread);

  uint64_t WantSum = 0, BucketSum = 0;
  for (int T = 0; T < kThreads; ++T)
    for (uint64_t I = 0; I < kPerThread; ++I)
      WantSum += uint64_t(T) * 1000 + I;
  EXPECT_EQ(S.Sum, WantSum);
  for (int I = 0; I < metrics::HistogramSnapshot::kBuckets; ++I)
    BucketSum += S.Buckets[I];
  EXPECT_EQ(BucketSum, S.Count);
  EXPECT_EQ(S.Min, 0u);
  EXPECT_EQ(S.Max, uint64_t(kThreads - 1) * 1000 + kPerThread - 1);
  H.reset();
}
