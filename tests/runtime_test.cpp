//===- tests/runtime_test.cpp - Runtime library & support utilities --------===//
//
// Covers the pieces every generated kernel links against (thread pool,
// atomics, integer division, GEMM) and the small support utilities.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <gtest/gtest.h>

#include "codegen/rt/ft_runtime.h"
#include "support/error.h"
#include "support/string_utils.h"

using namespace ft;

namespace {

TEST(RuntimeTest, ParallelForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> Hits(1000);
  rt::parallelFor(0, 1000, [&](int64_t I) { Hits[I].fetch_add(1); });
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << I;
  // Empty and negative ranges are no-ops.
  bool Ran = false;
  rt::parallelFor(5, 5, [&](int64_t) { Ran = true; });
  rt::parallelFor(5, 3, [&](int64_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(RuntimeTest, ParallelForNestedCalls) {
  std::atomic<int64_t> Sum{0};
  rt::parallelFor(0, 10, [&](int64_t I) {
    int64_t Local = 0;
    for (int64_t J = 0; J < 10; ++J)
      Local += I * 10 + J;
    Sum.fetch_add(Local);
  });
  EXPECT_EQ(Sum.load(), 100 * 99 / 2);
}

TEST(RuntimeTest, AtomicReductions) {
  float Acc = 0;
  rt::parallelFor(0, 500, [&](int64_t) { rt::atomicAdd(&Acc, 1.0f); });
  EXPECT_FLOAT_EQ(Acc, 500.0f);

  float Mx = -1e30f, Mn = 1e30f;
  rt::parallelFor(0, 100, [&](int64_t I) {
    rt::atomicMax(&Mx, float(I));
    rt::atomicMin(&Mn, float(I));
  });
  EXPECT_FLOAT_EQ(Mx, 99.0f);
  EXPECT_FLOAT_EQ(Mn, 0.0f);

  double Prod = 1.0;
  for (int I = 0; I < 10; ++I)
    rt::atomicMul(&Prod, 2.0);
  EXPECT_DOUBLE_EQ(Prod, 1024.0);
}

TEST(RuntimeTest, FloorDivModMatchPython) {
  EXPECT_EQ(rt::floorDiv(7, 2), 3);
  EXPECT_EQ(rt::floorDiv(-7, 2), -4);
  EXPECT_EQ(rt::floorDiv(7, -2), -4);
  EXPECT_EQ(rt::floorMod(-7, 2), 1);
  EXPECT_EQ(rt::floorMod(7, -2), -1);
  EXPECT_EQ(rt::floorMod(-6, 3), 0);
}

TEST(RuntimeTest, GemmAllTransposeCombinations) {
  // A = [[1,2,3],[4,5,6]] (2x3), B = [[1,0],[0,1],[1,1]] (3x2).
  std::vector<float> A{1, 2, 3, 4, 5, 6};
  std::vector<float> B{1, 0, 0, 1, 1, 1};
  std::vector<float> AT{1, 4, 2, 5, 3, 6}; // 3x2
  std::vector<float> BT{1, 0, 1, 0, 1, 1}; // 2x3
  std::vector<float> Want{4, 5, 10, 11};   // A @ B

  for (int Mode = 0; Mode < 4; ++Mode) {
    bool TA = Mode & 1, TB = Mode & 2;
    std::vector<float> C(4, 0.0f);
    rt::gemm<float>(TA, TB, 2, 2, 3, (TA ? AT : A).data(),
                    (TB ? BT : B).data(), C.data());
    for (int I = 0; I < 4; ++I)
      EXPECT_FLOAT_EQ(C[I], Want[I]) << "mode " << Mode << " elt " << I;
  }
}

TEST(RuntimeTest, GemmAccumulates) {
  std::vector<float> A{1, 0, 0, 1}, B{2, 0, 0, 2};
  std::vector<float> C{5, 5, 5, 5};
  rt::gemm<float>(false, false, 2, 2, 2, A.data(), B.data(), C.data());
  EXPECT_FLOAT_EQ(C[0], 7);
  EXPECT_FLOAT_EQ(C[1], 5);
}

TEST(RuntimeTest, GemmLargerThanTile) {
  // Exercise the blocking path (Tile = 48).
  const int64_t N = 70;
  std::vector<float> A(N * N), B(N * N), C(N * N, 0.0f);
  for (int64_t I = 0; I < N * N; ++I) {
    A[I] = float((I * 7) % 5) - 2;
    B[I] = float((I * 3) % 7) - 3;
  }
  rt::gemm<float>(false, false, N, N, N, A.data(), B.data(), C.data());
  // Spot-check a few entries against a direct computation.
  for (int64_t I : {int64_t(0), int64_t(33), N - 1})
    for (int64_t J : {int64_t(0), int64_t(47), N - 1}) {
      float Want = 0;
      for (int64_t K = 0; K < N; ++K)
        Want += A[I * N + K] * B[K * N + J];
      EXPECT_FLOAT_EQ(C[I * N + J], Want) << I << "," << J;
    }
}

TEST(RuntimeTest, Sigmoid) {
  EXPECT_NEAR(rt::sigmoid(0.0f), 0.5f, 1e-6);
  EXPECT_NEAR(rt::sigmoid(100.0f), 1.0f, 1e-6);
  EXPECT_NEAR(rt::sigmoid(-100.0f), 0.0f, 1e-6);
}

//===--------------------------------------------------------------------===//
// Support utilities.
//===--------------------------------------------------------------------===//

TEST(SupportTest, StatusAndResult) {
  Status Ok;
  EXPECT_TRUE(Ok.ok());
  EXPECT_TRUE(static_cast<bool>(Ok));
  Status Err = Status::error("boom");
  EXPECT_FALSE(Err.ok());
  EXPECT_EQ(Err.message(), "boom");

  Result<int> R(42);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(*R, 42);
  Result<int> E = Result<int>::error("nope");
  EXPECT_FALSE(E.ok());
  EXPECT_EQ(E.message(), "nope");
  EXPECT_FALSE(E.status().ok());
}

TEST(SupportTest, StringUtils) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(fmtDouble(1.5), "1.5");
  EXPECT_EQ(fmtDouble(-std::numeric_limits<double>::infinity()),
            "(-INFINITY)");
  EXPECT_EQ(fmtDouble(std::numeric_limits<double>::infinity()), "INFINITY");

  std::set<std::string> Used{"x", "x.1"};
  auto IsUsed = [&](const std::string &N) { return Used.count(N) > 0; };
  EXPECT_EQ(freshName("y", IsUsed), "y");
  EXPECT_EQ(freshName("x", IsUsed), "x.2");
}

} // namespace
