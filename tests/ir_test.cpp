//===- tests/ir_test.cpp - IR construction, printing, compare -------------===//

#include <gtest/gtest.h>

#include "ir/compare.h"
#include "ir/func.h"
#include "ir/printer.h"

using namespace ft;

namespace {

Stmt makeSimpleLoop() {
  // for i in 0:n: a[i] = b[i] + 1
  Expr N = makeLoad("n", {}, DataType::Int64);
  Stmt Body = makeStore(
      "a", {makeVar("i")},
      makeAdd(makeLoad("b", {makeVar("i")}, DataType::Float32),
              makeIntConst(1)));
  return makeFor("i", makeIntConst(0), N, ForProperty{}, Body);
}

TEST(IrTest, KindsAndCasting) {
  Expr E = makeAdd(makeIntConst(1), makeVar("i"));
  ASSERT_TRUE(isa<BinaryNode>(E));
  ASSERT_FALSE(isa<LoadNode>(E));
  auto B = cast<BinaryNode>(E);
  EXPECT_EQ(B->Op, BinOpKind::Add);
  EXPECT_TRUE(isa<IntConstNode>(B->LHS));
  EXPECT_EQ(dyn_cast<VarNode>(B->RHS)->Name, "i");
  EXPECT_EQ(dyn_cast<LoadNode>(E), nullptr);
}

TEST(IrTest, ExprIsNotStmt) {
  Expr E = makeIntConst(3);
  EXPECT_TRUE(E->isExpr());
  Stmt S = makeSimpleLoop();
  EXPECT_TRUE(S->isStmt());
  EXPECT_FALSE(S->isExpr());
}

TEST(IrTest, StmtIdsAreUniqueAndStable) {
  Stmt A = makeSimpleLoop();
  Stmt B = makeSimpleLoop();
  EXPECT_NE(A->Id, B->Id);
  // Explicit ID preservation.
  Stmt C = makeFor("i", makeIntConst(0), makeIntConst(4), ForProperty{},
                   makeStore("a", {makeVar("i")}, makeIntConst(0)), A->Id);
  EXPECT_EQ(C->Id, A->Id);
}

TEST(IrTest, PrinterExpr) {
  Expr E = makeMul(makeAdd(makeVar("i"), makeIntConst(2)),
                   makeLoad("b", {makeVar("j")}, DataType::Float32));
  EXPECT_EQ(toString(E), "((i + 2) * b[j])");
  EXPECT_EQ(toString(makeMin(makeVar("x"), makeIntConst(0))), "min(x, 0)");
  EXPECT_EQ(toString(makeUnary(UnOpKind::Exp, makeVar("x"))), "exp(x)");
}

TEST(IrTest, PrinterStmt) {
  Stmt S = makeSimpleLoop();
  EXPECT_EQ(toString(S), "for i in 0:n\n  a[i] = (b[i] + 1)\n");
}

TEST(IrTest, PrinterVarDefAndReduce) {
  Stmt Red = makeReduceTo("y", {}, ReduceOpKind::Add, makeVar("i"));
  Stmt Def = makeVarDef("y", TensorInfo{{}, DataType::Float32},
                        AccessType::Cache, MemType::CPULocal, Red);
  std::string P = toString(Def);
  EXPECT_NE(P.find("var y: f32[] @cpulocal cache:"), std::string::npos);
  EXPECT_NE(P.find("y += i"), std::string::npos);
}

TEST(IrTest, DeepEqualExpr) {
  Expr A = makeAdd(makeVar("i"), makeIntConst(1));
  Expr B = makeAdd(makeVar("i"), makeIntConst(1));
  Expr C = makeAdd(makeVar("j"), makeIntConst(1));
  EXPECT_TRUE(deepEqual(A, B));
  EXPECT_FALSE(deepEqual(A, C));
  EXPECT_EQ(structuralHash(A), structuralHash(B));
}

TEST(IrTest, DeepEqualStmtIgnoresIds) {
  Stmt A = makeSimpleLoop();
  Stmt B = makeSimpleLoop();
  EXPECT_NE(A->Id, B->Id);
  EXPECT_TRUE(deepEqual(A, B));
}

TEST(IrTest, FindStmtAndVarDef) {
  Stmt Loop = makeSimpleLoop();
  Stmt Def = makeVarDef("a", TensorInfo{{makeIntConst(10)}},
                        AccessType::Output, MemType::CPU, Loop);
  EXPECT_EQ(findStmt(Def, Loop->Id), Loop);
  EXPECT_EQ(findStmt(Def, 999999999), nullptr);
  auto D = findVarDef(Def, "a");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Name, "a");
  EXPECT_EQ(findVarDef(Def, "zz"), nullptr);
}

TEST(IrTest, FindStmtByLabel) {
  Stmt Loop = makeSimpleLoop();
  Loop->Label = "outer";
  Stmt Def = makeVarDef("a", TensorInfo{{makeIntConst(10)}},
                        AccessType::Output, MemType::CPU, Loop);
  EXPECT_EQ(findStmtByLabel(Def, "outer"), Loop);
  EXPECT_EQ(findStmtByLabel(Def, "nope"), nullptr);
}

TEST(IrTest, DataTypePromotion) {
  EXPECT_EQ(upCast(DataType::Int32, DataType::Int64), DataType::Int64);
  EXPECT_EQ(upCast(DataType::Int64, DataType::Float32), DataType::Float32);
  EXPECT_EQ(upCast(DataType::Bool, DataType::Bool), DataType::Bool);
  EXPECT_EQ(upCast(DataType::Bool, DataType::Int64), DataType::Int64);
  EXPECT_EQ(sizeOf(DataType::Float64), 8u);
  EXPECT_EQ(nameOf(DataType::Float32), "f32");
}

TEST(IrTest, DataTypeOf) {
  Expr L = makeLoad("b", {makeVar("i")}, DataType::Float32);
  EXPECT_EQ(dataTypeOf(L), DataType::Float32);
  EXPECT_EQ(dataTypeOf(makeAdd(L, makeIntConst(1))), DataType::Float32);
  EXPECT_EQ(dataTypeOf(makeLT(makeVar("i"), makeIntConst(3))),
            DataType::Bool);
  EXPECT_EQ(dataTypeOf(makeVar("i")), DataType::Int64);
  EXPECT_EQ(dataTypeOf(makeRealDiv(makeIntConst(1), makeIntConst(2))),
            DataType::Float32);
}

TEST(IrTest, NeutralValues) {
  Expr Z = neutralValue(ReduceOpKind::Add, DataType::Float32);
  EXPECT_EQ(cast<FloatConstNode>(Z)->Val, 0.0);
  Expr MaxN = neutralValue(ReduceOpKind::Max, DataType::Float32);
  EXPECT_TRUE(cast<FloatConstNode>(MaxN)->Val < -1e300);
  Expr MinI = neutralValue(ReduceOpKind::Min, DataType::Int64);
  EXPECT_EQ(cast<IntConstNode>(MinI)->Val, INT64_MAX);
}

} // namespace
