//===- tests/schedule_test.cpp - Table-1 transformations ------------------===//
//
// Each schedule is tested for (a) legality decisions matching the paper's
// examples (Fig. 8/10 fuse, Fig. 12 reorder, Fig. 13 parallelize) and
// (b) semantics preservation, by interpreting the program before and after
// the transformation on fixed inputs and comparing outputs.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <gtest/gtest.h>

#include "frontend/libop.h"
#include "interp/interp.h"
#include "pass/const_fold.h"
#include "ir/printer.h"
#include "schedule/schedule.h"

using namespace ft;

namespace {

/// Fills a float buffer deterministically.
void seedBuffer(Buffer &B, double Scale, double Phase) {
  for (int64_t I = 0; I < B.numel(); ++I)
    B.setF(I, Scale * std::sin(0.37 * double(I) + Phase));
}

/// Interprets \p F with fresh deterministically-seeded inputs; returns the
/// concatenated outputs. Only Float32 params supported here.
std::vector<float> runWithSeeds(const Func &F,
                                const std::map<std::string,
                                               std::vector<int64_t>> &Shapes,
                                const std::vector<std::string> &Outputs) {
  std::map<std::string, Buffer> Store;
  std::map<std::string, Buffer *> Args;
  double Phase = 0;
  for (const std::string &P : F.Params) {
    auto It = Shapes.find(P);
    ftAssert(It != Shapes.end(), "missing shape for param " + P);
    Store.emplace(P, Buffer(DataType::Float32, It->second));
    seedBuffer(Store.at(P), 1.0, Phase += 1.0);
    Args[P] = &Store.at(P);
  }
  interpret(F, Args);
  std::vector<float> Out;
  for (const std::string &O : Outputs) {
    const Buffer &B = Store.at(O);
    Out.insert(Out.end(), B.as<float>(), B.as<float>() + B.numel());
  }
  return Out;
}

/// Asserts two runs agree.
void expectSameResults(const Func &Before, const Func &After,
                       const std::map<std::string,
                                      std::vector<int64_t>> &Shapes,
                       const std::vector<std::string> &Outputs) {
  std::vector<float> A = runWithSeeds(Before, Shapes, Outputs);
  std::vector<float> B = runWithSeeds(After, Shapes, Outputs);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_NEAR(A[I], B[I], 1e-5) << "output element " << I;
}

/// y[i] = x[i] * 2 + 1, labeled loop "L".
Func buildMap(int64_t N) {
  FunctionBuilder B("map");
  View X = B.input("x", {makeIntConst(N)});
  View Y = B.output("y", {makeIntConst(N)});
  B.loop(
      "i", 0, N,
      [&](Expr I) {
        Y[I].assign(X[I].load() * makeFloatConst(2.0) + makeFloatConst(1.0));
      },
      "L");
  return B.build();
}

//===--------------------------------------------------------------------===//
// split / merge
//===--------------------------------------------------------------------===//

TEST(ScheduleTest, SplitDivisible) {
  Func F = buildMap(12);
  Schedule S(F);
  int64_t L = *S.findByLabel("L");
  auto Ids = S.split(L, 4);
  ASSERT_TRUE(Ids.ok()) << Ids.message();
  S.cleanup();
  // 12 % 4 == 0: the guard must be gone.
  EXPECT_EQ(toString(S.ast()).find("if"), std::string::npos);
  auto Nest = S.perfectNest(Ids->First);
  ASSERT_EQ(Nest.size(), 2u);
  EXPECT_EQ(toString(Nest[0]->End), "3");
  EXPECT_EQ(toString(Nest[1]->End), "4");
  expectSameResults(buildMap(12), S.func(), {{"x", {12}}, {"y", {12}}},
                    {"y"});
}

TEST(ScheduleTest, SplitNonDivisibleKeepsGuard) {
  Func F = buildMap(10);
  Schedule S(F);
  auto Ids = S.split(*S.findByLabel("L"), 4);
  ASSERT_TRUE(Ids.ok());
  S.cleanup();
  EXPECT_NE(toString(S.ast()).find("if"), std::string::npos);
  expectSameResults(buildMap(10), S.func(), {{"x", {10}}, {"y", {10}}},
                    {"y"});
}

TEST(ScheduleTest, SplitThenSeparateTail) {
  Func F = buildMap(10);
  Schedule S(F);
  auto Ids = S.split(*S.findByLabel("L"), 4);
  ASSERT_TRUE(Ids.ok());
  auto Tail = S.separateTail(Ids->First);
  ASSERT_TRUE(Tail.ok()) << Tail.message();
  // The main region is branch-free; the tail's inner loop keeps a guard,
  // which a second separate_tail (applied recursively) removes.
  std::function<int64_t(const Stmt &)> FindGuardedLoop =
      [&](const Stmt &St) -> int64_t {
    if (auto Fo = dyn_cast<ForNode>(St)) {
      std::string P = toString(Fo->Body);
      if (isa<IfNode>(Fo->Body) ||
          (isa<StmtSeqNode>(Fo->Body) && P.find("if") != std::string::npos))
        return Fo->Id;
      return FindGuardedLoop(Fo->Body);
    }
    if (auto Seq = dyn_cast<StmtSeqNode>(St)) {
      for (const Stmt &Sub : Seq->Stmts)
        if (int64_t Id = FindGuardedLoop(Sub); Id >= 0)
          return Id;
      return -1;
    }
    if (auto D = dyn_cast<VarDefNode>(St))
      return FindGuardedLoop(D->Body);
    return -1;
  };
  int64_t Guarded = FindGuardedLoop(S.ast());
  ASSERT_GE(Guarded, 0);
  auto Tail2 = S.separateTail(Guarded);
  ASSERT_TRUE(Tail2.ok()) << Tail2.message();
  std::string P = toString(S.ast());
  EXPECT_EQ(P.find("if"), std::string::npos)
      << "guard should be fully separated:\n" << P;
  expectSameResults(buildMap(10), S.func(), {{"x", {10}}, {"y", {10}}},
                    {"y"});
}

TEST(ScheduleTest, MergeLoops) {
  FunctionBuilder B("m");
  View X = B.input("x", {makeIntConst(6), makeIntConst(4)});
  View Y = B.output("y", {makeIntConst(6), makeIntConst(4)});
  int64_t Outer = -1;
  Outer = B.loop(
      "i", 0, 6,
      [&](Expr I) {
        B.loop("j", 0, 4,
               [&](Expr J) { Y[I][J].assign(X[I][J].load() * 3); });
      },
      "Li");
  Func F = B.build();
  Schedule S(F);
  auto Nest = S.perfectNest(Outer);
  ASSERT_EQ(Nest.size(), 2u);
  auto M = S.merge(Nest[0]->Id, Nest[1]->Id);
  ASSERT_TRUE(M.ok()) << M.message();
  auto NewNest = S.perfectNest(*M);
  ASSERT_EQ(NewNest.size(), 1u);
  EXPECT_EQ(toString(constFold(NewNest[0]->len())), "24");
  expectSameResults(F, S.func(), {{"x", {6, 4}}, {"y", {6, 4}}}, {"y"});
}

//===--------------------------------------------------------------------===//
// reorder (paper Fig. 12)
//===--------------------------------------------------------------------===//

struct ReorderCase {
  Func F;
  int64_t Li, Lj;
};

// Fig. 12(a): a[i, j] = b[i, j] + 1. Reorderable.
ReorderCase fig12a() {
  FunctionBuilder B("a");
  View Av = B.output("a", {makeIntConst(5), makeIntConst(7)});
  View Bv = B.input("b", {makeIntConst(5), makeIntConst(7)});
  ReorderCase C;
  C.Li = B.loop("i", 0, 5, [&](Expr I) {
    C.Lj = B.loop("j", 0, 7, [&](Expr J) {
      Av[I][J].assign(Bv[I][J].load() + makeFloatConst(1.0));
    });
  });
  C.F = B.build();
  return C;
}

// Fig. 12(b): a = a * b[i, j] + 1 with a scalar: NOT reorderable.
ReorderCase fig12b() {
  FunctionBuilder B("b");
  View Av = B.inout("a", {});
  View Bv = B.input("b", {makeIntConst(5), makeIntConst(7)});
  ReorderCase C;
  C.Li = B.loop("i", 0, 5, [&](Expr I) {
    C.Lj = B.loop("j", 0, 7, [&](Expr J) {
      Av.assign(Av.load() * Bv[I][J].load() + makeFloatConst(1.0));
    });
  });
  C.F = B.build();
  return C;
}

// Fig. 12(c): a = a + b[i, j]: reorderable thanks to ReduceTo.
ReorderCase fig12c() {
  FunctionBuilder B("c");
  View Av = B.inout("a", {});
  View Bv = B.input("b", {makeIntConst(5), makeIntConst(7)});
  ReorderCase C;
  C.Li = B.loop("i", 0, 5, [&](Expr I) {
    C.Lj = B.loop("j", 0, 7,
                  [&](Expr J) { Av += Bv[I][J].load(); });
  });
  C.F = B.build();
  return C;
}

// Fig. 12(d): per-(i,j) temporary t[k]: reorderable by scope filtering.
ReorderCase fig12d() {
  FunctionBuilder B("d");
  View Av = B.input("a", {makeIntConst(5), makeIntConst(7), makeIntConst(3)});
  View Bv =
      B.output("b", {makeIntConst(5), makeIntConst(7), makeIntConst(3)});
  ReorderCase C;
  C.Li = B.loop("i", 0, 5, [&](Expr I) {
    C.Lj = B.loop("j", 0, 7, [&](Expr J) {
      View T = B.local("t", {makeIntConst(3)});
      B.loop("k", 0, 3, [&](Expr K) {
        T[K].assign(Av[I][J][K].load());
        Bv[I][J][K].assign(T[K].load());
      });
    });
  });
  C.F = B.build();
  return C;
}

TEST(ScheduleTest, ReorderFig12aLegal) {
  ReorderCase C = fig12a();
  Schedule S(C.F);
  Status St = S.reorder({C.Lj, C.Li});
  EXPECT_TRUE(St.ok()) << St.message();
  // Outermost loop is now j.
  auto L = dyn_cast<ForNode>(findStmt(S.ast(), C.Lj));
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->Iter, "j");
  EXPECT_TRUE(S.perfectNest(C.Lj).size() == 2);
  expectSameResults(fig12a().F, S.func(), {{"a", {5, 7}}, {"b", {5, 7}}},
                    {"a"});
}

TEST(ScheduleTest, ReorderFig12bIllegal) {
  ReorderCase C = fig12b();
  Schedule S(C.F);
  Status St = S.reorder({C.Lj, C.Li});
  EXPECT_FALSE(St.ok());
  EXPECT_NE(St.message().find("dependence"), std::string::npos);
}

TEST(ScheduleTest, ReorderFig12cReduceLegal) {
  ReorderCase C = fig12c();
  Schedule S(C.F);
  Status St = S.reorder({C.Lj, C.Li});
  EXPECT_TRUE(St.ok()) << St.message();
  expectSameResults(fig12c().F, S.func(), {{"a", {}}, {"b", {5, 7}}},
                    {"a"});
}

TEST(ScheduleTest, ReorderFig12dScopeFilteredLegal) {
  ReorderCase C = fig12d();
  Schedule S(C.F);
  Status St = S.reorder({C.Lj, C.Li});
  EXPECT_TRUE(St.ok()) << St.message();
  expectSameResults(fig12d().F, S.func(),
                    {{"a", {5, 7, 3}}, {"b", {5, 7, 3}}}, {"b"});
}

TEST(ScheduleTest, ReorderTrueDistanceDependenceIllegal) {
  // Fig. 11-style: a[i+1, j] = a[i, j+1] + 1 has distance (1, -1):
  // interchange flips it to (-1, 1) which is lexicographically negative.
  FunctionBuilder B("w");
  View Av = B.inout("a", {makeIntConst(8), makeIntConst(8)});
  int64_t Li = -1, Lj = -1;
  Li = B.loop("i", 0, 7, [&](Expr I) {
    Lj = B.loop("j", 0, 7, [&](Expr J) {
      Av[I + 1][J].assign(Av[I][J + 1].load() + makeFloatConst(1.0));
    });
  });
  Func F = B.build();
  Schedule S(F);
  EXPECT_FALSE(S.reorder({Lj, Li}).ok());
}

//===--------------------------------------------------------------------===//
// fuse (paper Fig. 8 -> Fig. 10) and fission
//===--------------------------------------------------------------------===//

/// Builds the softmax-tail fragment of Fig. 8: a loop computing dot_max by
/// max-reduction, then a loop reading dot_max. Fusing them is illegal.
TEST(ScheduleTest, FuseFig8MaxThenUseIllegal) {
  FunctionBuilder B("f");
  View Dot = B.input("dot", {makeIntConst(9)});
  View Norm = B.output("norm", {makeIntConst(9)});
  View Mx = B.local("mx", {});
  Mx.assign(makeFloatConst(-INFINITY));
  int64_t L1 = B.loop("k", 0, 9,
                      [&](Expr K) { Mx.reduceMax(Dot[K].load()); });
  int64_t L2 = B.loop("k", 0, 9, [&](Expr K) {
    Norm[K].assign(Dot[K].load() - Mx.load());
  });
  Func F = B.build();
  Schedule S(F);
  auto R = S.fuse(L1, L2);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.message().find("dependence"), std::string::npos);
}

TEST(ScheduleTest, FuseElementwiseChainsLegal) {
  // Fig. 8's other fusion (lines 4 and 13) is legal: producer/consumer at
  // equal iterations.
  FunctionBuilder B("f");
  View X = B.input("x", {makeIntConst(16)});
  View Y = B.output("y", {makeIntConst(16)});
  View T = B.local("t", {makeIntConst(16)});
  int64_t L1 = B.loop("i", 0, 16, [&](Expr I) {
    T[I].assign(X[I].load() * makeFloatConst(2.0));
  });
  int64_t L2 = B.loop("i", 0, 16, [&](Expr I) {
    Y[I].assign(T[I].load() + makeFloatConst(1.0));
  });
  Func F = B.build();
  Schedule S(F);
  auto R = S.fuse(L1, L2);
  ASSERT_TRUE(R.ok()) << R.message();
  // One loop remains.
  auto L = dyn_cast<ForNode>(findStmt(S.ast(), *R));
  ASSERT_NE(L, nullptr);
  expectSameResults(F, S.func(), {{"x", {16}}, {"y", {16}}}, {"y"});
}

TEST(ScheduleTest, FuseOffsetRangesRemapIterators) {
  // for k in -2:3: a[k+2]=...   fused with   for m in 0:5: b[m]=a[m].
  FunctionBuilder B("f");
  View A = B.local("a", {makeIntConst(5)});
  View X = B.input("x", {makeIntConst(5)});
  View Y = B.output("y", {makeIntConst(5)});
  int64_t L1 = B.loop("k", -2, 3, [&](Expr K) {
    A[K + 2].assign(X[K + 2].load() * makeFloatConst(3.0));
  });
  int64_t L2 = B.loop("m", 0, 5,
                      [&](Expr M) { Y[M].assign(A[M].load()); });
  Func F = B.build();
  Schedule S(F);
  auto R = S.fuse(L1, L2);
  ASSERT_TRUE(R.ok()) << R.message();
  expectSameResults(F, S.func(), {{"x", {5}}, {"y", {5}}}, {"y"});
}

TEST(ScheduleTest, FissionLegalAndIllegal) {
  // for i: { t[i] = x[i]*2 ; y[i] = t[i]+1 }  -- fission legal.
  FunctionBuilder B("f");
  View X = B.input("x", {makeIntConst(8)});
  View Y = B.output("y", {makeIntConst(8)});
  View T = B.local("t", {makeIntConst(8)});
  int64_t FirstStore = -1;
  int64_t L = B.loop("i", 0, 8, [&](Expr I) {
    T[I].assign(X[I].load() * makeFloatConst(2.0));
    Y[I].assign(T[I].load() + makeFloatConst(1.0));
  });
  Func F = B.build();
  // Identify the first statement of the loop body.
  auto Loop = dyn_cast<ForNode>(findStmt(F.Body, L));
  auto Seq = dyn_cast<StmtSeqNode>(Loop->Body);
  ASSERT_NE(Seq, nullptr);
  FirstStore = Seq->Stmts[0]->Id;

  Schedule S(F);
  auto R = S.fission(L, FirstStore);
  ASSERT_TRUE(R.ok()) << R.message();
  expectSameResults(F, S.func(), {{"x", {8}}, {"y", {8}}}, {"y"});

  // for i: { y[i] = t ; t = x[i] } -- fission reverses the t dependence.
  FunctionBuilder B2("g");
  View X2 = B2.input("x", {makeIntConst(8)});
  View Y2 = B2.output("y", {makeIntConst(8)});
  View T2 = B2.local("t", {});
  T2.assign(0.0);
  int64_t L2 = B2.loop("i", 0, 8, [&](Expr I) {
    Y2[I].assign(T2.load());
    T2.assign(X2[I].load());
  });
  Func G = B2.build();
  auto Loop2 = dyn_cast<ForNode>(findStmt(G.Body, L2));
  auto Seq2 = dyn_cast<StmtSeqNode>(Loop2->Body);
  Schedule S2(G);
  EXPECT_FALSE(S2.fission(L2, Seq2->Stmts[0]->Id).ok());
}

TEST(ScheduleTest, SwapLegalAndIllegal) {
  FunctionBuilder B("f");
  View X = B.input("x", {makeIntConst(4)});
  View Y = B.output("y", {makeIntConst(4)});
  View Z = B.output("z", {makeIntConst(4)});
  int64_t L = B.loop("i", 0, 4, [&](Expr I) {
    Y[I].assign(X[I].load());
    Z[I].assign(X[I].load() * makeFloatConst(2.0));
  });
  Func F = B.build();
  auto Loop = dyn_cast<ForNode>(findStmt(F.Body, L));
  auto Seq = dyn_cast<StmtSeqNode>(Loop->Body);
  Schedule S(F);
  EXPECT_TRUE(S.swap(Seq->Stmts[0]->Id, Seq->Stmts[1]->Id).ok());
  expectSameResults(F, S.func(), {{"x", {4}}, {"y", {4}}, {"z", {4}}},
                    {"y", "z"});

  // Producer/consumer cannot swap.
  FunctionBuilder B2("g");
  View X2 = B2.input("x", {makeIntConst(4)});
  View Y2 = B2.output("y", {makeIntConst(4)});
  View T2 = B2.local("t", {});
  int64_t L2 = B2.loop("i", 0, 4, [&](Expr I) {
    T2.assign(X2[I].load());
    Y2[I].assign(T2.load());
  });
  Func G = B2.build();
  auto Loop2 = dyn_cast<ForNode>(findStmt(G.Body, L2));
  // Body is VarDef(t){seq}: the local was declared outside the loop in this
  // builder; find the sequence.
  auto Seq2 = dyn_cast<StmtSeqNode>(Loop2->Body);
  ASSERT_NE(Seq2, nullptr);
  Schedule S2(G);
  EXPECT_FALSE(S2.swap(Seq2->Stmts[0]->Id, Seq2->Stmts[1]->Id).ok());
}

//===--------------------------------------------------------------------===//
// parallelize (paper Fig. 13) / vectorize / unroll / blend
//===--------------------------------------------------------------------===//

TEST(ScheduleTest, ParallelizeFig13) {
  // (a) elementwise: legal.
  {
    Func F = buildMap(16);
    Schedule S(F);
    int64_t L = *S.findByLabel("L");
    EXPECT_TRUE(S.parallelize(L).ok());
    auto Loop = dyn_cast<ForNode>(findStmt(S.ast(), L));
    EXPECT_TRUE(Loop->Property.Parallel);
    EXPECT_TRUE(Loop->Property.NoDeps);
  }
  // (b) scalar recurrence: illegal.
  {
    FunctionBuilder B("b");
    View A = B.inout("a", {});
    View Bv = B.input("b", {makeIntConst(8)});
    int64_t L = B.loop("i", 0, 8, [&](Expr I) {
      A.assign(A.load() * makeFloatConst(2.0) + Bv[I].load());
    });
    Func F = B.build();
    Schedule S(F);
    Status St = S.parallelize(L);
    EXPECT_FALSE(St.ok());
  }
  // (d) reduction to one location: legal via atomics.
  {
    FunctionBuilder B("d");
    View A = B.output("a", {});
    View Bv = B.input("b", {makeIntConst(8)});
    A.assign(0.0);
    int64_t L = B.loop("i", 0, 8, [&](Expr I) { A += Bv[I].load(); });
    Func F = B.build();
    Schedule S(F);
    EXPECT_TRUE(S.parallelize(L).ok());
    // The ReduceTo must now be atomic.
    bool FoundAtomic = false;
    std::function<void(const Stmt &)> Scan = [&](const Stmt &S2) {
      if (auto R = dyn_cast<ReduceToNode>(S2))
        FoundAtomic |= R->Atomic;
      if (auto Seq = dyn_cast<StmtSeqNode>(S2))
        for (const Stmt &Sub : Seq->Stmts)
          Scan(Sub);
      if (auto D = dyn_cast<VarDefNode>(S2))
        Scan(D->Body);
      if (auto Fo = dyn_cast<ForNode>(S2))
        Scan(Fo->Body);
    };
    Scan(S.ast());
    EXPECT_TRUE(FoundAtomic);
  }
  // (e) indirect reduction: legal via atomics.
  {
    FunctionBuilder B("e");
    View A = B.inout("a", {makeIntConst(8)});
    View Idx = B.input("idx", {makeIntConst(8)}, DataType::Int64);
    View Bv = B.input("b", {makeIntConst(8)});
    int64_t L = B.loop("i", 0, 8, [&](Expr I) {
      A[Idx[I].load()] += Bv[I].load();
    });
    Func F = B.build();
    Schedule S(F);
    EXPECT_TRUE(S.parallelize(L).ok());
  }
}

TEST(ScheduleTest, VectorizeRequiresIndependence) {
  Func F = buildMap(16);
  Schedule S(F);
  EXPECT_TRUE(S.vectorize(*S.findByLabel("L")).ok());

  FunctionBuilder B("g");
  View A = B.inout("a", {makeIntConst(10)});
  int64_t L = B.loop("i", 0, 9, [&](Expr I) {
    A[I + 1].assign(A[I].load() + makeFloatConst(1.0));
  });
  Func G = B.build();
  Schedule S2(G);
  EXPECT_FALSE(S2.vectorize(L).ok());
}

TEST(ScheduleTest, UnrollFullAndPartial) {
  Func F = buildMap(4);
  Schedule S(F);
  int64_t L = *S.findByLabel("L");
  ASSERT_TRUE(S.unroll(L, /*Full=*/true).ok());
  std::string P = toString(S.ast());
  EXPECT_EQ(P.find("for"), std::string::npos);
  EXPECT_NE(P.find("y[3]"), std::string::npos);
  expectSameResults(buildMap(4), S.func(), {{"x", {4}}, {"y", {4}}}, {"y"});

  Func F2 = buildMap(100);
  Schedule S2(F2);
  int64_t L2 = *S2.findByLabel("L");
  EXPECT_FALSE(S2.unroll(L2, /*Full=*/true).ok()); // Too long.
  EXPECT_TRUE(S2.unroll(L2, /*Full=*/false).ok()); // Mark only.
  auto Loop = dyn_cast<ForNode>(findStmt(S2.ast(), L2));
  EXPECT_TRUE(Loop->Property.Unroll);
}

TEST(ScheduleTest, BlendInterleavesStatements) {
  FunctionBuilder B("f");
  View X = B.input("x", {makeIntConst(3)});
  View Y = B.output("y", {makeIntConst(3)});
  View Z = B.output("z", {makeIntConst(3)});
  int64_t L = B.loop("i", 0, 3, [&](Expr I) {
    Y[I].assign(X[I].load());
    Z[I].assign(X[I].load() * makeFloatConst(2.0));
  });
  Func F = B.build();
  Schedule S(F);
  ASSERT_TRUE(S.blend(L).ok());
  std::string P = toString(S.ast());
  // All three y-stores precede all three z-stores.
  EXPECT_LT(P.find("y[2]"), P.find("z[0]"));
  expectSameResults(F, S.func(), {{"x", {3}}, {"y", {3}}, {"z", {3}}},
                    {"y", "z"});
}

//===--------------------------------------------------------------------===//
// cache / cache_reduce (paper Fig. 14) and layout schedules
//===--------------------------------------------------------------------===//

TEST(ScheduleTest, CacheFig14SlidingWindow) {
  // for i in 0:n: for j in 0:m: f(a[i+j]) — cache a around loop j caches
  // exactly m elements [i, i+m).
  const int64_t N = 6, M = 4;
  FunctionBuilder B("f");
  View A = B.input("a", {makeIntConst(N + M - 1)});
  View Y = B.output("y", {makeIntConst(N)});
  int64_t Lj = -1;
  B.loop("i", 0, N, [&](Expr I) {
    Lj = B.loop("j", 0, M, [&](Expr J) {
      Y[I] += A[I + J].load() * makeFloatConst(0.5);
    });
  });
  Func F = B.build();
  Schedule S(F);
  auto R = S.cache(Lj, "a", MemType::CPULocal);
  ASSERT_TRUE(R.ok()) << R.message();
  auto CacheDef = findVarDef(S.ast(), *R);
  ASSERT_NE(CacheDef, nullptr);
  ASSERT_EQ(CacheDef->Info.Shape.size(), 1u);
  EXPECT_EQ(toString(constFold(CacheDef->Info.Shape[0])), "4");
  EXPECT_EQ(CacheDef->MTy, MemType::CPULocal);
  expectSameResults(F, S.func(), {{"a", {N + M - 1}}, {"y", {N}}}, {"y"});
}

TEST(ScheduleTest, CacheWrittenRegionWritesBack) {
  // Cache an output region that is written: write-back must restore it.
  FunctionBuilder B("f");
  View Y = B.output("y", {makeIntConst(8)});
  int64_t L = B.loop("i", 0, 8, [&](Expr I) {
    Y[I].assign(makeFloatConst(1.0) + makeCast(DataType::Float32, I));
  });
  Func F = B.build();
  Schedule S(F);
  auto R = S.cache(L, "y", MemType::CPU);
  ASSERT_TRUE(R.ok()) << R.message();
  expectSameResults(F, S.func(), {{"y", {8}}}, {"y"});
}

TEST(ScheduleTest, CacheReduction) {
  // for i: for j: y[i] += x[i, j] — cache_reduce y around loop j.
  FunctionBuilder B("f");
  View X = B.input("x", {makeIntConst(4), makeIntConst(5)});
  View Y = B.output("y", {makeIntConst(4)});
  libop::zeros(B, Y);
  int64_t Lj = -1;
  B.loop("i", 0, 4, [&](Expr I) {
    Lj = B.loop("j", 0, 5, [&](Expr J) { Y[I] += X[I][J].load(); });
  });
  Func F = B.build();
  Schedule S(F);
  auto R = S.cacheReduction(Lj, "y", MemType::CPULocal);
  ASSERT_TRUE(R.ok()) << R.message();
  std::string P = toString(S.ast());
  EXPECT_NE(P.find(*R), std::string::npos);
  expectSameResults(F, S.func(), {{"x", {4, 5}}, {"y", {4}}}, {"y"});
}

TEST(ScheduleTest, VarLayoutTransforms) {
  // t is a 6x4 cache tensor; split / reorder / merge its dims.
  FunctionBuilder B("f");
  View X = B.input("x", {makeIntConst(6), makeIntConst(4)});
  View Y = B.output("y", {makeIntConst(6), makeIntConst(4)});
  View T = B.local("t", {makeIntConst(6), makeIntConst(4)});
  B.loop("i", 0, 6, [&](Expr I) {
    B.loop("j", 0, 4,
           [&](Expr J) { T[I][J].assign(X[I][J].load() * 2); });
  });
  B.loop("i", 0, 6, [&](Expr I) {
    B.loop("j", 0, 4, [&](Expr J) { Y[I][J].assign(T[I][J].load()); });
  });
  Func F = B.build();

  {
    Schedule S(F);
    ASSERT_TRUE(S.varSplit("t", 0, 2).ok());
    auto D = findVarDef(S.ast(), "t");
    ASSERT_EQ(D->Info.Shape.size(), 3u);
    EXPECT_EQ(toString(D->Info.Shape[0]), "3");
    EXPECT_EQ(toString(D->Info.Shape[1]), "2");
    expectSameResults(F, S.func(), {{"x", {6, 4}}, {"y", {6, 4}}}, {"y"});
  }
  {
    Schedule S(F);
    ASSERT_TRUE(S.varReorder("t", {1, 0}).ok());
    auto D = findVarDef(S.ast(), "t");
    EXPECT_EQ(toString(D->Info.Shape[0]), "4");
    expectSameResults(F, S.func(), {{"x", {6, 4}}, {"y", {6, 4}}}, {"y"});
  }
  {
    Schedule S(F);
    ASSERT_TRUE(S.varMerge("t", 0).ok());
    auto D = findVarDef(S.ast(), "t");
    ASSERT_EQ(D->Info.Shape.size(), 1u);
    EXPECT_EQ(toString(D->Info.Shape[0]), "24");
    expectSameResults(F, S.func(), {{"x", {6, 4}}, {"y", {6, 4}}}, {"y"});
  }
  {
    Schedule S(F);
    EXPECT_FALSE(S.varSplit("t", 0, 5).ok());  // Not divisible.
    EXPECT_FALSE(S.varSplit("x", 0, 2).ok());  // Not a cache tensor.
    EXPECT_FALSE(S.varReorder("t", {0, 0}).ok());
  }
}

TEST(ScheduleTest, SetMemType) {
  FunctionBuilder B("f");
  View Y = B.output("y", {});
  View T = B.local("t", {});
  T.assign(2.0);
  Y.assign(T.load());
  Func F = B.build();
  Schedule S(F);
  ASSERT_TRUE(S.setMemType("t", MemType::CPULocal).ok());
  EXPECT_EQ(findVarDef(S.ast(), "t")->MTy, MemType::CPULocal);
  EXPECT_FALSE(S.setMemType("y", MemType::CPULocal).ok());
}

//===--------------------------------------------------------------------===//
// as_lib
//===--------------------------------------------------------------------===//

TEST(ScheduleTest, AsLibMatchesMatmul) {
  FunctionBuilder B("mm");
  View A = B.input("A", {makeIntConst(4), makeIntConst(6)});
  View Bv = B.input("B", {makeIntConst(6), makeIntConst(5)});
  View C = B.output("C", {makeIntConst(4), makeIntConst(5)});
  int64_t Li = B.loop("i", 0, 4, [&](Expr I) {
    B.loop("j", 0, 5, [&](Expr J) {
      C[I][J].assign(0.0);
      B.loop("k", 0, 6,
             [&](Expr K) { C[I][J] += A[I][K].load() * Bv[K][J].load(); });
    });
  });
  Func F = B.build();
  Schedule S(F);
  Status St = S.asLib(Li);
  ASSERT_TRUE(St.ok()) << St.message();
  EXPECT_NE(toString(S.ast()).find("gemm(C += A @ B"), std::string::npos);
  expectSameResults(F, S.func(), {{"A", {4, 6}}, {"B", {6, 5}},
                                  {"C", {4, 5}}},
                    {"C"});
}

TEST(ScheduleTest, AsLibTransposedOperands) {
  // C[i,j] += A[k,i] * B[j,k]: A transposed, B transposed.
  FunctionBuilder B("mmt");
  View A = B.input("A", {makeIntConst(6), makeIntConst(4)});
  View Bv = B.input("B", {makeIntConst(5), makeIntConst(6)});
  View C = B.output("C", {makeIntConst(4), makeIntConst(5)});
  int64_t Li = B.loop("i", 0, 4, [&](Expr I) {
    B.loop("j", 0, 5, [&](Expr J) {
      C[I][J].assign(0.0);
      B.loop("k", 0, 6,
             [&](Expr K) { C[I][J] += A[K][I].load() * Bv[J][K].load(); });
    });
  });
  Func F = B.build();
  Schedule S(F);
  Status St = S.asLib(Li);
  ASSERT_TRUE(St.ok()) << St.message();
  EXPECT_NE(toString(S.ast()).find("A^T"), std::string::npos);
  EXPECT_NE(toString(S.ast()).find("B^T"), std::string::npos);
  expectSameResults(F, S.func(), {{"A", {6, 4}}, {"B", {5, 6}},
                                  {"C", {4, 5}}},
                    {"C"});
}

TEST(ScheduleTest, AsLibRejectsNonMatmul) {
  FunctionBuilder B("nm");
  View A = B.input("A", {makeIntConst(4), makeIntConst(6)});
  View C = B.output("C", {makeIntConst(4), makeIntConst(6)});
  int64_t Li = B.loop("i", 0, 4, [&](Expr I) {
    B.loop("j", 0, 6,
           [&](Expr J) { C[I][J].assign(A[I][J].load() * 2); });
  });
  Func F = B.build();
  Schedule S(F);
  EXPECT_FALSE(S.asLib(Li).ok());
}

//===--------------------------------------------------------------------===//
// separate_tail on the Longformer boundary guard
//===--------------------------------------------------------------------===//

TEST(ScheduleTest, SeparateTailLongformerGuard) {
  // for j in 0:n: for k in -w:w+1: if 0 <= j+k < n: y[j] += x[j+k]
  const int64_t N = 12, W = 2;
  FunctionBuilder B("f");
  View X = B.input("x", {makeIntConst(N)});
  View Y = B.output("y", {makeIntConst(N)});
  int64_t Lj = B.loop("j", 0, N, [&](Expr J) {
    Y[J].assign(0.0);
    B.loop("k", -W, W + 1, [&](Expr K) {
      B.ifThen(J + K >= 0 && J + K < N,
               [&] { Y[J] += X[J + K].load(); });
    });
  });
  Func F = B.build();
  Schedule S(F);
  auto R = S.separateTail(Lj);
  ASSERT_TRUE(R.ok()) << R.message();
  // The middle region must be branch-free; boundaries keep guards.
  std::string P = toString(S.ast());
  EXPECT_NE(P.find("for j in 2:10"), std::string::npos) << P;
  expectSameResults(F, S.func(), {{"x", {N}}, {"y", {N}}}, {"y"});
}

} // namespace
