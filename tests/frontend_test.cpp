//===- tests/frontend_test.cpp - DSL builder, views, libop, interp --------===//
//
// Includes the paper-fidelity checks: the dimension-free recursive add of
// Fig. 6(b) must stage to the nested loops of Fig. 9(c), and the Longformer
// kernel of Fig. 5 must compute the right values.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <gtest/gtest.h>

#include "frontend/libop.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "pass/const_fold.h"
#include "pass/simplify.h"

using namespace ft;

namespace {

TEST(BuilderTest, ParamsAndBuild) {
  FunctionBuilder B("f");
  Expr N = B.scalarInput("n");
  View A = B.input("a", {N});
  View Y = B.output("y", {N});
  B.loop("i", makeIntConst(0), N, [&](Expr I) { Y[I].assign(A[I].load()); });
  Func F = B.build();
  EXPECT_EQ(F.Name, "f");
  ASSERT_EQ(F.Params.size(), 3u);
  EXPECT_EQ(F.Params[0], "n");
  // Parameters wrap the body outermost-first.
  auto D = cast<VarDefNode>(F.Body);
  EXPECT_EQ(D->Name, "n");
  EXPECT_EQ(D->ATy, AccessType::Input);
}

TEST(BuilderTest, ViewSelectAndSlice) {
  FunctionBuilder B("f");
  View A = B.input("a", {makeIntConst(4), makeIntConst(6)});
  // A[1] is a 1-D view of row 1; A[1][2] is a scalar.
  View Row = A[1];
  EXPECT_EQ(Row.ndim(), 1);
  EXPECT_EQ(toString(Row[2].load()), "a[(0 + 1), (0 + 2)]");

  // Slicing dimension 1 to [2, 5) then selecting 0 gives column offset 2.
  View S = A.slice(1, makeIntConst(2), makeIntConst(5));
  EXPECT_EQ(S.ndim(), 2);
  EXPECT_EQ(toString(simplify(makeStore("y", {}, S[0][0].load()))),
            "y = a[0, 2]\n");
  EXPECT_EQ(toString(constFold(S.shape(1))), "3");
}

TEST(BuilderTest, LocalScopesOverRestOfBlock) {
  FunctionBuilder B("f");
  View Y = B.output("y", {});
  View T = B.local("t", {});
  T.assign(1.0);
  Y.assign(T.load());
  Func F = B.build();
  // Structure: VarDef y { VarDef t { t = 1; y = t } }.
  auto DY = cast<VarDefNode>(F.Body);
  auto DT = cast<VarDefNode>(DY->Body);
  EXPECT_EQ(DT->Name, "t");
  EXPECT_EQ(DT->ATy, AccessType::Cache);
}

TEST(BuilderTest, FreshNamesAvoidCollision) {
  FunctionBuilder B("f");
  View T1 = B.local("t", {});
  View T2 = B.local("t", {});
  EXPECT_EQ(T1.name(), "t");
  EXPECT_EQ(T2.name(), "t.1");
}

TEST(BuilderTest, LoopsAndIfsNest) {
  FunctionBuilder B("f");
  View Y = B.output("y", {makeIntConst(10)});
  B.loop("i", 0, 10, [&](Expr I) {
    B.ifThenElse(
        I < 5, [&] { Y[I].assign(0.0); }, [&] { Y[I].assign(1.0); });
  });
  Func F = B.build();
  std::string P = toString(F.Body);
  EXPECT_NE(P.find("for i in 0:10"), std::string::npos);
  EXPECT_NE(P.find("if (i < 5):"), std::string::npos);
  EXPECT_NE(P.find("else:"), std::string::npos);
}

//===--------------------------------------------------------------------===//
// Fig. 6(b) -> Fig. 9(c): dimension-free add expands to nested loops.
//===--------------------------------------------------------------------===//

TEST(LibopTest, DimensionFreeAddExpandsToNestedLoops) {
  FunctionBuilder B("add3d");
  auto Sh = [&](int64_t V) { return makeIntConst(V); };
  View A = B.input("A", {Sh(2), Sh(3), Sh(4)});
  View Bv = B.input("B", {Sh(2), Sh(3), Sh(4)});
  View C = B.output("C", {Sh(2), Sh(3), Sh(4)});
  libop::add(B, A, Bv, C); // Recursion on ndim, as in Fig. 6(b).
  Func F = simplify(B.build());

  // The staged program is exactly the three nested loops of Fig. 9(c).
  std::string P = toString(F.Body);
  EXPECT_NE(P.find("for i in 0:2"), std::string::npos);
  EXPECT_NE(P.find("for i.1 in 0:3"), std::string::npos);
  EXPECT_NE(P.find("for i.2 in 0:4"), std::string::npos);
  EXPECT_NE(P.find("C[i, i.1, i.2] = (A[i, i.1, i.2] + B[i, i.1, i.2])"),
            std::string::npos);
  // And nothing else: no residual branches or calls.
  EXPECT_EQ(P.find("if"), std::string::npos);
}

TEST(LibopTest, AddComputesCorrectValues) {
  FunctionBuilder B("add2d");
  View A = B.input("A", {makeIntConst(2), makeIntConst(2)});
  View Bv = B.input("B", {makeIntConst(2), makeIntConst(2)});
  View C = B.output("C", {makeIntConst(2), makeIntConst(2)});
  libop::add(B, A, Bv, C);
  Func F = B.build();

  Buffer BA = Buffer::fromF32({2, 2}, {1, 2, 3, 4});
  Buffer BB = Buffer::fromF32({2, 2}, {10, 20, 30, 40});
  Buffer BC(DataType::Float32, {2, 2});
  interpret(F, {{"A", &BA}, {"B", &BB}, {"C", &BC}});
  EXPECT_FLOAT_EQ(BC.as<float>()[0], 11);
  EXPECT_FLOAT_EQ(BC.as<float>()[3], 44);
}

TEST(LibopTest, MatmulAndReductions) {
  FunctionBuilder B("mm");
  View A = B.input("A", {makeIntConst(2), makeIntConst(3)});
  View Bv = B.input("B", {makeIntConst(3), makeIntConst(2)});
  View C = B.output("C", {makeIntConst(2), makeIntConst(2)});
  View RS = B.output("rs", {makeIntConst(3)}); // col-sums of A
  View MX = B.output("mx", {makeIntConst(2)}); // row-maxes of A
  libop::matmul(B, A, Bv, C);
  libop::reduceSum(B, A, RS, /*Axis=*/0);
  libop::reduceMax(B, A, MX, /*Axis=*/1);
  Func F = B.build();

  Buffer BA = Buffer::fromF32({2, 3}, {1, 2, 3, 4, 5, 6});
  Buffer BB = Buffer::fromF32({3, 2}, {7, 8, 9, 10, 11, 12});
  Buffer BC(DataType::Float32, {2, 2});
  Buffer BRS(DataType::Float32, {3});
  Buffer BMX(DataType::Float32, {2});
  interpret(F, {{"A", &BA}, {"B", &BB}, {"C", &BC}, {"rs", &BRS},
                {"mx", &BMX}});
  // C = [[58, 64], [139, 154]]
  EXPECT_FLOAT_EQ(BC.as<float>()[0], 58);
  EXPECT_FLOAT_EQ(BC.as<float>()[1], 64);
  EXPECT_FLOAT_EQ(BC.as<float>()[2], 139);
  EXPECT_FLOAT_EQ(BC.as<float>()[3], 154);
  EXPECT_FLOAT_EQ(BRS.as<float>()[0], 5);
  EXPECT_FLOAT_EQ(BRS.as<float>()[2], 9);
  EXPECT_FLOAT_EQ(BMX.as<float>()[0], 3);
  EXPECT_FLOAT_EQ(BMX.as<float>()[1], 6);
}

TEST(LibopTest, SoftmaxMatchesReference) {
  FunctionBuilder B("sm");
  View X = B.input("x", {makeIntConst(5)});
  View Y = B.output("y", {makeIntConst(5)});
  libop::softmax(B, X, Y);
  Func F = B.build();

  std::vector<float> Xs = {1.0f, -2.0f, 0.5f, 3.0f, 0.0f};
  Buffer BX = Buffer::fromF32({5}, Xs);
  Buffer BY(DataType::Float32, {5});
  interpret(F, {{"x", &BX}, {"y", &BY}});

  double Mx = 3.0, Den = 0;
  for (float V : Xs)
    Den += std::exp(V - Mx);
  for (int I = 0; I < 5; ++I)
    EXPECT_NEAR(BY.as<float>()[I], std::exp(Xs[I] - Mx) / Den, 1e-6);
}

//===--------------------------------------------------------------------===//
// Fig. 5: Longformer sliding-window attention scores, checked numerically.
//===--------------------------------------------------------------------===//

Func buildLongformerScores(int64_t SeqLen, int64_t FeatLen, int64_t W) {
  FunctionBuilder B("longformer_scores");
  View Q = B.input("Q", {makeIntConst(SeqLen), makeIntConst(FeatLen)});
  View K = B.input("K", {makeIntConst(SeqLen), makeIntConst(FeatLen)});
  View Attn =
      B.output("attn", {makeIntConst(SeqLen), makeIntConst(2 * W + 1)});
  B.loop("j", 0, SeqLen, [&](Expr J) {
    View Dot = B.local("dot", {makeIntConst(2 * W + 1)});
    libop::zeros(B, Dot);
    B.loop("k", -W, W + 1, [&](Expr Kk) {
      B.ifThen(J + Kk >= 0 && J + Kk < SeqLen, [&] {
        B.loop("p", 0, FeatLen, [&](Expr P) {
          Dot[Kk + W] += Q[J][P].load() * K[J + Kk][P].load();
        });
      });
    });
    libop::softmax(B, Dot, Attn[J]);
  });
  return B.build();
}

TEST(LibopTest, LongformerScoresMatchReference) {
  const int64_t N = 6, D = 3, W = 2;
  Func F = buildLongformerScores(N, D, W);

  std::vector<float> Q(N * D), K(N * D);
  for (size_t I = 0; I < Q.size(); ++I) {
    Q[I] = std::sin(0.3 * double(I));
    K[I] = std::cos(0.2 * double(I));
  }
  Buffer BQ = Buffer::fromF32({N, D}, Q);
  Buffer BK = Buffer::fromF32({N, D}, K);
  Buffer BA(DataType::Float32, {N, 2 * W + 1});
  interpret(F, {{"Q", &BQ}, {"K", &BK}, {"attn", &BA}});

  for (int64_t J = 0; J < N; ++J) {
    // Reference computation.
    std::vector<double> Dot(2 * W + 1, 0.0);
    for (int64_t Kk = -W; Kk <= W; ++Kk) {
      if (J + Kk < 0 || J + Kk >= N)
        continue;
      for (int64_t P = 0; P < D; ++P)
        Dot[Kk + W] += double(Q[J * D + P]) * double(K[(J + Kk) * D + P]);
    }
    double Mx = *std::max_element(Dot.begin(), Dot.end());
    double Den = 0;
    for (double V : Dot)
      Den += std::exp(V - Mx);
    for (int64_t C = 0; C < 2 * W + 1; ++C)
      EXPECT_NEAR(BA.as<float>()[J * (2 * W + 1) + C],
                  std::exp(Dot[C] - Mx) / Den, 1e-5)
          << "row " << J << " col " << C;
  }
}

TEST(InterpTest, CountsAreConsistent) {
  FunctionBuilder B("count");
  View X = B.input("x", {makeIntConst(8)});
  View Y = B.output("y", {makeIntConst(8)});
  B.loop("i", 0, 8,
         [&](Expr I) { Y[I].assign(X[I].load() * makeFloatConst(2.0)); });
  Func F = B.build();
  Buffer BX(DataType::Float32, {8});
  Buffer BY(DataType::Float32, {8});
  InterpStats St = interpret(F, {{"x", &BX}, {"y", &BY}});
  EXPECT_EQ(St.Loads, 8);
  EXPECT_EQ(St.Stores, 8);
  EXPECT_EQ(St.Flops, 8);
  EXPECT_EQ(St.bytesMoved(), 8 * 4 * 2);
}

TEST(InterpTest, IndirectIndexing) {
  // y[i] = e[adj[i]]: the SubdivNet-style gather.
  FunctionBuilder B("gather");
  View E = B.input("e", {makeIntConst(4)});
  View Adj = B.input("adj", {makeIntConst(3)}, DataType::Int64);
  View Y = B.output("y", {makeIntConst(3)});
  B.loop("i", 0, 3, [&](Expr I) {
    Y[I].assign(E[Adj[I].load()].load());
  });
  Func F = B.build();
  Buffer BE = Buffer::fromF32({4}, {10, 20, 30, 40});
  Buffer BAdj = Buffer::fromI64({3}, {2, 0, 3});
  Buffer BY(DataType::Float32, {3});
  interpret(F, {{"e", &BE}, {"adj", &BAdj}, {"y", &BY}});
  EXPECT_FLOAT_EQ(BY.as<float>()[0], 30);
  EXPECT_FLOAT_EQ(BY.as<float>()[1], 10);
  EXPECT_FLOAT_EQ(BY.as<float>()[2], 40);
}

} // namespace
