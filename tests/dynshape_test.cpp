//===- tests/dynshape_test.cpp - Shape-generic kernel execution -----------===//
//
// Dynamic-shape correctness end to end:
//   - differential fuzz: ONE compiled `.so` of a shape-generic program,
//     run across randomized shapes, bit-compared against the interpreter
//     (the JIT and the reference semantics must agree at every extent);
//   - a 2-D program with two independent extents exercises symbolic
//     strides, not just symbolic trip counts;
//   - ragged serving: >= 32 distinct shapes through the executor perform
//     exactly one generic background compile (the fingerprint never sees
//     a literal extent) and every response is interpreter-equal;
//   - validateArgs / Kernel::run negative paths: missing, zero, negative,
//     and inconsistent extent bindings are typed errors, not UB.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <gtest/gtest.h>
#include <random>
#include <unistd.h>

#include "analysis/extents.h"
#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "frontend/builder.h"
#include "interp/interp.h"
#include "serve/serve.h"
#include "serve/shape_key.h"
#include "serve/telemetry.h"

using namespace ft;
using namespace ft::serve;

namespace {

Expr ic(int64_t V) { return makeIntConst(V); }

/// y[i] = x[i] * 2 + 1 over a symbolic extent `n`.
Func makeDynAxpy() {
  FunctionBuilder B("dynaxpy");
  Expr N = B.scalarInput("n");
  View X = B.input("x", {N});
  View Y = B.output("y", {N});
  B.loop("i", ic(0), N, [&](Expr I) {
    Y[I].assign(X[I].load() * makeFloatConst(2.0) + makeFloatConst(1.0));
  });
  return B.build();
}

/// Row-sum with two independent extents: y[i] = sum_j x[i,j] + x[i,0].
/// The inner stride of `x` is the runtime value of `m`, so this exercises
/// symbolic strides (address arithmetic), not just symbolic trip counts.
Func makeDynRowSum() {
  FunctionBuilder B("dynrowsum");
  Expr N = B.scalarInput("n");
  Expr M = B.scalarInput("m");
  View X = B.input("x", {N, M});
  View Y = B.output("y", {N});
  B.loop("i", ic(0), N, [&](Expr I) {
    Y[I].assign(X[I][ic(0)].load());
    B.loop("j", ic(0), M,
           [&](Expr J) { Y[I] += X[I][J].load(); });
  });
  return B.build();
}

void seed(Buffer &B, double Phase = 0.37) {
  for (int64_t I = 0; I < B.numel(); ++I)
    B.setF(I, std::sin(Phase * double(I)));
}

class DynShapeTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Tmpl[] = "/tmp/ftdyn.XXXXXX";
    ASSERT_NE(::mkdtemp(Tmpl), nullptr);
    Dir = Tmpl;
    ::setenv("FT_CACHE_DIR", Dir.c_str(), 1);
    ::setenv("FT_CACHE", "1", 1);
    for (const char *V :
         {"FT_SERVE_THREADS", "FT_SERVE_QUEUE_CAP", "FT_SERVE_ON_FULL",
          "FT_SERVE_BATCH_WINDOW_US", "FT_SERVE_MAX_BATCH",
          "FT_SERVE_OPT_FLAGS", "FT_SERVE_RT_THREADS", "FT_TELEMETRY_DIR",
          "FT_SPECIALIZE", "FT_SPECIALIZE_AFTER", "FT_SPECIALIZE_MAX",
          "FT_SPECIALIZE_OPT_FLAGS"})
      ::unsetenv(V);
    telemetry::setEnabled(false);
    telemetry::reset();
    kernel_cache::memReset();
  }
  void TearDown() override {
    ::unsetenv("FT_CACHE_DIR");
    ::unsetenv("FT_CACHE");
    telemetry::setEnabled(false);
    telemetry::reset();
    kernel_cache::memReset();
    std::system(("rm -rf '" + Dir + "'").c_str());
  }
  std::string Dir;
};

} // namespace

TEST_F(DynShapeTest, ShapeKeyCanonicalAndRoundTrips) {
  Buffer N = Buffer::scalarI64(7);
  Buffer X(DataType::Float32, {4, 2});
  Buffer Z(DataType::Int64, {3});
  // Insertion order must not matter: the key sorts by parameter name.
  std::map<std::string, Buffer *> A{{"z", &Z}, {"n", &N}, {"x", &X}};
  EXPECT_EQ(shapeKeyOf(A), "n:i64=7 x:f32[4x2] z:i64[3]");
  auto Ext = parseScalarExtents(shapeKeyOf(A));
  ASSERT_TRUE(Ext.ok()) << Ext.message();
  ASSERT_EQ(Ext->size(), 1u);
  EXPECT_EQ(Ext->at("n"), 7);
}

TEST_F(DynShapeTest, ParseScalarExtentsRejectsNonIntegerDtype) {
  // A float "scalar extent" cannot bind an extent parameter; parsing must
  // fail loudly rather than silently truncate.
  auto Bad = parseScalarExtents("n:f32=3 x:f32[4x2]");
  ASSERT_FALSE(Bad.ok());
  EXPECT_NE(Bad.message().find("non-integer dtype"), std::string::npos)
      << Bad.message();
  // Bucketed (`~`) segments are ranges, not bindings: skipped, not errors.
  auto Bucketed = parseScalarExtents("m:i64=16 nnz:i64~8192 val:f32[~8192]");
  ASSERT_TRUE(Bucketed.ok()) << Bucketed.message();
  ASSERT_EQ(Bucketed->size(), 1u);
  EXPECT_EQ(Bucketed->at("m"), 16);
}

TEST_F(DynShapeTest, DifferentialFuzzOneCompiledKernel) {
  Func F = makeDynAxpy();
  auto K = Kernel::compile(F, "-O2");
  ASSERT_TRUE(K.ok()) << K.status().message();

  std::mt19937 Rng(20260809);
  std::uniform_int_distribution<int64_t> Dist(1, 97);
  for (int Iter = 0; Iter < 16; ++Iter) {
    int64_t N = Dist(Rng);
    Buffer NB = Buffer::scalarI64(N);
    Buffer X(DataType::Float32, {N});
    Buffer YJ(DataType::Float32, {N}), YI(DataType::Float32, {N});
    seed(X, 0.11 + 0.01 * Iter);
    Status S = K->run({{"n", &NB}, {"x", &X}, {"y", &YJ}});
    ASSERT_TRUE(S.ok()) << "n=" << N << ": " << S.message();
    interpret(F, {{"n", &NB}, {"x", &X}, {"y", &YI}});
    EXPECT_EQ(std::memcmp(YJ.raw(), YI.raw(), size_t(N) * sizeof(float)), 0)
        << "JIT/interpreter divergence at n=" << N;
  }
}

TEST_F(DynShapeTest, DifferentialFuzzSymbolicStrides) {
  Func F = makeDynRowSum();
  {
    ExtentSpec Spec = extentParamsOf(F);
    ASSERT_EQ(Spec.Params.size(), 2u);
    EXPECT_TRUE(Spec.contains("n"));
    EXPECT_TRUE(Spec.contains("m"));
  }
  auto K = Kernel::compile(F, "-O2");
  ASSERT_TRUE(K.ok()) << K.status().message();

  std::mt19937 Rng(7);
  std::uniform_int_distribution<int64_t> Dist(1, 23);
  for (int Iter = 0; Iter < 12; ++Iter) {
    int64_t N = Dist(Rng), M = Dist(Rng);
    Buffer NB = Buffer::scalarI64(N), MB = Buffer::scalarI64(M);
    Buffer X(DataType::Float32, {N, M});
    Buffer YJ(DataType::Float32, {N}), YI(DataType::Float32, {N});
    seed(X, 0.29 + 0.01 * Iter);
    std::map<std::string, Buffer *> Args{
        {"n", &NB}, {"m", &MB}, {"x", &X}, {"y", &YJ}};
    Status S = K->run(Args);
    ASSERT_TRUE(S.ok()) << "n=" << N << " m=" << M << ": " << S.message();
    Args["y"] = &YI;
    interpret(F, Args);
    EXPECT_EQ(std::memcmp(YJ.raw(), YI.raw(), size_t(N) * sizeof(float)), 0)
        << "JIT/interpreter divergence at n=" << N << " m=" << M;
  }
}

TEST_F(DynShapeTest, RaggedServeCompilesOnceForAllShapes) {
  Func F = makeDynAxpy();
  Config C;
  C.BatchWindowUs = 0;
  C.Specialize = true;
  C.SpecializeAfter = 4;
  C.SpecializeMax = 2;
  Executor Ex(C);

  constexpr int kShapes = 32;
  for (int K = 0; K < kShapes; ++K) {
    int64_t N = 1 + 3 * K; // 1, 4, 7, ..., 94: every shape distinct
    Buffer NB = Buffer::scalarI64(N);
    Buffer X(DataType::Float32, {N}), Y(DataType::Float32, {N});
    seed(X, 0.17 + 0.01 * K);
    auto R = Ex.submit(F, {{"n", &NB}, {"x", &X}, {"y", &Y}});
    ASSERT_TRUE(R.ok()) << R.status().message();
    Response Resp = R->get();
    ASSERT_TRUE(Resp.S.ok()) << "n=" << N << ": " << Resp.S.message();

    Buffer YI(DataType::Float32, {N});
    interpret(F, {{"n", &NB}, {"x", &X}, {"y", &YI}});
    EXPECT_EQ(std::memcmp(Y.raw(), YI.raw(), size_t(N) * sizeof(float)), 0)
        << "serve/interpreter divergence at n=" << N;
  }
  Ex.drain();
  ServeStats St = Ex.stats();
  // One generic fingerprint serves all 32 shapes: exactly one background
  // compile, and at most SpecializeMax specialized ones on top.
  EXPECT_EQ(St.CompilesStarted, 1u);
  EXPECT_EQ(St.CompilesFailed, 0u);
  EXPECT_LE(St.SpecCompilesStarted, C.SpecializeMax);
  EXPECT_EQ(St.RunErrors, 0u);
  Ex.shutdown();
}

TEST_F(DynShapeTest, ValidateArgsRejectsBadExtentBindings) {
  Func F = makeDynAxpy();
  Buffer N8 = Buffer::scalarI64(8);
  Buffer X8(DataType::Float32, {8}), Y8(DataType::Float32, {8});

  // Well-formed binding passes.
  EXPECT_TRUE(validateArgs(F, {{"n", &N8}, {"x", &X8}, {"y", &Y8}}).ok());

  // Missing extent binding.
  {
    Status S = validateArgs(F, {{"x", &X8}, {"y", &Y8}});
    ASSERT_FALSE(S.ok());
    EXPECT_NE(S.message().find("n"), std::string::npos) << S.message();
  }
  // Zero extent.
  {
    Buffer N0 = Buffer::scalarI64(0);
    Buffer X0(DataType::Float32, {0}), Y0(DataType::Float32, {0});
    Status S = validateArgs(F, {{"n", &N0}, {"x", &X0}, {"y", &Y0}});
    ASSERT_FALSE(S.ok());
    EXPECT_NE(S.message().find(">= 1"), std::string::npos) << S.message();
  }
  // Negative extent.
  {
    Buffer Nneg = Buffer::scalarI64(-3);
    Status S = validateArgs(F, {{"n", &Nneg}, {"x", &X8}, {"y", &Y8}});
    ASSERT_FALSE(S.ok());
    EXPECT_NE(S.message().find(">= 1"), std::string::npos) << S.message();
  }
  // Tensor inconsistent with the bound extent: n says 4, x has 8.
  {
    Buffer N4 = Buffer::scalarI64(4);
    Status S = validateArgs(F, {{"n", &N4}, {"x", &X8}, {"y", &Y8}});
    ASSERT_FALSE(S.ok());
    EXPECT_NE(S.message().find("shape mismatch"), std::string::npos)
        << S.message();
  }
  // Extent bound to a rank-1 tensor instead of a 0-D scalar.
  {
    Buffer NV(DataType::Int64, {1});
    NV.as<int64_t>()[0] = 8;
    Status S = validateArgs(F, {{"n", &NV}, {"x", &X8}, {"y", &Y8}});
    EXPECT_FALSE(S.ok());
  }
}

TEST_F(DynShapeTest, KernelRunRejectsBadExtentBindings) {
  Func F = makeDynAxpy();
  auto K = Kernel::compile(F, "-O2");
  ASSERT_TRUE(K.ok()) << K.status().message();

  Buffer X8(DataType::Float32, {8}), Y8(DataType::Float32, {8});
  // The compiled kernel enforces the same request contract as
  // validateArgs: bad bindings are typed errors before any native code
  // touches the buffers.
  {
    Buffer N0 = Buffer::scalarI64(0);
    Buffer X0(DataType::Float32, {0}), Y0(DataType::Float32, {0});
    Status S = K->run({{"n", &N0}, {"x", &X0}, {"y", &Y0}});
    ASSERT_FALSE(S.ok());
    EXPECT_NE(S.message().find(">= 1"), std::string::npos) << S.message();
  }
  {
    Buffer N4 = Buffer::scalarI64(4);
    Status S = K->run({{"n", &N4}, {"x", &X8}, {"y", &Y8}});
    ASSERT_FALSE(S.ok());
    EXPECT_NE(S.message().find("shape mismatch"), std::string::npos)
        << S.message();
  }
  {
    // Rank mismatch on a tensor argument.
    Buffer N8 = Buffer::scalarI64(8);
    Buffer X2D(DataType::Float32, {2, 4});
    Status S = K->run({{"n", &N8}, {"x", &X2D}, {"y", &Y8}});
    ASSERT_FALSE(S.ok());
    EXPECT_NE(S.message().find("rank"), std::string::npos) << S.message();
  }
}
