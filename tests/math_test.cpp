//===- tests/math_test.cpp - LinearExpr and AffineSet ----------------------===//

#include <gtest/gtest.h>

#include "math/affine_set.h"

using namespace ft;

namespace {

LinearExpr lin(int64_t C) { return LinearExpr::constant(C); }
LinearExpr var(const std::string &N) { return LinearExpr::variable(N); }

LinearExpr add(const LinearExpr &A, const LinearExpr &B) {
  auto R = LinearExpr::tryAdd(A, B);
  EXPECT_TRUE(R.has_value());
  return *R;
}

LinearExpr scale(const LinearExpr &A, int64_t K) {
  auto R = LinearExpr::tryScale(A, K);
  EXPECT_TRUE(R.has_value());
  return *R;
}

TEST(LinearTest, BasicOps) {
  LinearExpr E = add(scale(var("i"), 2), lin(3)); // 2i + 3
  EXPECT_EQ(E.coeffOf("i"), 2);
  EXPECT_EQ(E.constTerm(), 3);
  EXPECT_FALSE(E.isConstant());
  LinearExpr F = *LinearExpr::trySub(E, var("i")); // i + 3
  EXPECT_EQ(F.coeffOf("i"), 1);
  LinearExpr G = *LinearExpr::trySub(F, var("i")); // 3
  EXPECT_TRUE(G.isConstant());
  EXPECT_EQ(G.constTerm(), 3);
}

TEST(LinearTest, Substitute) {
  LinearExpr E = add(scale(var("i"), 3), var("j")); // 3i + j
  LinearExpr R = add(var("k"), lin(1));             // i := k + 1
  LinearExpr S = *E.substitute("i", R);             // 3k + j + 3
  EXPECT_EQ(S.coeffOf("k"), 3);
  EXPECT_EQ(S.coeffOf("j"), 1);
  EXPECT_EQ(S.constTerm(), 3);
  EXPECT_EQ(S.coeffOf("i"), 0);
}

TEST(LinearTest, Renamed) {
  LinearExpr E = add(scale(var("i"), 2), var("j"));
  LinearExpr R = E.renamed("i", "p.i");
  EXPECT_EQ(R.coeffOf("p.i"), 2);
  EXPECT_EQ(R.coeffOf("i"), 0);
  EXPECT_EQ(R.coeffOf("j"), 1);
}

TEST(LinearTest, OverflowDetected) {
  LinearExpr Big = scale(var("x"), INT64_MAX / 2 + 1);
  EXPECT_FALSE(LinearExpr::tryAdd(Big, Big).has_value());
  EXPECT_FALSE(LinearExpr::tryScale(Big, 3).has_value());
}

TEST(LinearTest, GcdNormalize) {
  LinearExpr E = add(add(scale(var("i"), 4), scale(var("j"), 6)), lin(8));
  E.normalizeByGcd();
  EXPECT_EQ(E.coeffOf("i"), 2);
  EXPECT_EQ(E.coeffOf("j"), 3);
  EXPECT_EQ(E.constTerm(), 4);
}

TEST(LinearTest, FloorDivMod) {
  EXPECT_EQ(floorDiv64(7, 2), 3);
  EXPECT_EQ(floorDiv64(-7, 2), -4);
  EXPECT_EQ(mod64(-7, 2), 1);
  EXPECT_EQ(mod64(7, -2), -1);
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
}

//===--------------------------------------------------------------------===//
// AffineSet emptiness.
//===--------------------------------------------------------------------===//

TEST(AffineSetTest, TriviallyEmpty) {
  AffineSet S;
  S.addGe0(lin(-1)); // -1 >= 0
  EXPECT_TRUE(S.isEmpty());
}

TEST(AffineSetTest, TriviallyNonEmpty) {
  AffineSet S;
  S.addGe0(lin(0));
  EXPECT_FALSE(S.isEmpty());
  AffineSet T;
  EXPECT_FALSE(T.isEmpty());
}

TEST(AffineSetTest, IntervalContradiction) {
  // x >= 5 and x <= 3.
  AffineSet S;
  S.addLE(lin(5), var("x"));
  S.addLE(var("x"), lin(3));
  EXPECT_TRUE(S.isEmpty());
}

TEST(AffineSetTest, IntervalFeasible) {
  AffineSet S;
  S.addLE(lin(3), var("x"));
  S.addLE(var("x"), lin(5));
  EXPECT_FALSE(S.isEmpty());
}

TEST(AffineSetTest, GcdTest) {
  // 2x == 1 has no integer solution (rationally feasible!).
  AffineSet S;
  LinearExpr E = scale(var("x"), 2);
  E.addConst(-1);
  S.addEq0(E);
  EXPECT_TRUE(S.isEmpty());
}

TEST(AffineSetTest, EqualitySubstitution) {
  // x == y + 2, x <= 1, y >= 0 -> empty.
  AffineSet S;
  S.addEQ(var("x"), add(var("y"), lin(2)));
  S.addLE(var("x"), lin(1));
  S.addLE(lin(0), var("y"));
  EXPECT_TRUE(S.isEmpty());
}

TEST(AffineSetTest, TwoVarChain) {
  // 0 <= i < n, 0 <= j < n, i > j, i < j -> empty.
  AffineSet S;
  S.addLE(lin(0), var("i"));
  S.addLT(var("i"), var("n"));
  S.addLE(lin(0), var("j"));
  S.addLT(var("j"), var("n"));
  S.addLT(var("i"), var("j"));
  S.addLT(var("j"), var("i"));
  EXPECT_TRUE(S.isEmpty());
}

TEST(AffineSetTest, ParametricFeasible) {
  // 0 <= i < n and n >= 1: feasible (i = 0).
  AffineSet S;
  S.addLE(lin(0), var("i"));
  S.addLT(var("i"), var("n"));
  S.addLE(lin(1), var("n"));
  EXPECT_FALSE(S.isEmpty());
}

TEST(AffineSetTest, ParametricEmptyDomain) {
  // 0 <= i < n and n <= 0: empty.
  AffineSet S;
  S.addLE(lin(0), var("i"));
  S.addLT(var("i"), var("n"));
  S.addLE(var("n"), lin(0));
  EXPECT_TRUE(S.isEmpty());
}

TEST(AffineSetTest, PaperFig11DependenceDistance) {
  // Paper §4.2.1: dependence between write a[i+1][j] and read a[i-1][j+1]
  // in iteration space 1 <= i,j < N-1 yields distance (2, -1). Verify that
  // the dependence set forces q_i = p_i - 2 (i.e. a point with q_i = p_i
  // is infeasible).
  auto Domain = [](AffineSet &S, const std::string &I,
                   const std::string &J) {
    S.addLE(lin(1), var(I));
    S.addLT(var(I), add(var("N"), lin(-1)));
    S.addLE(lin(1), var(J));
    S.addLT(var(J), add(var("M"), lin(-1)));
  };
  AffineSet S;
  Domain(S, "p.i", "p.j");
  Domain(S, "q.i", "q.j");
  // Write index (p.i + 1, p.j) equals read index (q.i - 1, q.j + 1).
  S.addEQ(add(var("p.i"), lin(1)), add(var("q.i"), lin(-1)));
  S.addEQ(var("p.j"), add(var("q.j"), lin(1)));
  // Claim: q.i == p.i impossible.
  AffineSet T = S;
  T.addEQ(var("q.i"), var("p.i"));
  EXPECT_TRUE(T.isEmpty());
  // But q.i == p.i + 2 is feasible (given large enough N, M).
  AffineSet U = S;
  U.addEQ(var("q.i"), add(var("p.i"), lin(2)));
  U.addLE(lin(10), var("N"));
  U.addLE(lin(10), var("M"));
  EXPECT_FALSE(U.isEmpty());
}

TEST(AffineSetTest, Implies) {
  // 0 <= i < n implies i >= -5.
  AffineSet S;
  S.addLE(lin(0), var("i"));
  S.addLT(var("i"), var("n"));
  LinearExpr E = add(var("i"), lin(5)); // i + 5 >= 0
  EXPECT_TRUE(S.implies(E));
  // Does not imply i >= 1.
  LinearExpr F = add(var("i"), lin(-1));
  EXPECT_FALSE(S.implies(F));
}

TEST(AffineSetTest, StrideGcdInteraction) {
  // i == 2k, j == 2m + 1, i == j  -> parity conflict, empty.
  AffineSet S;
  S.addEQ(var("i"), scale(var("k"), 2));
  S.addEQ(var("j"), add(scale(var("m"), 2), lin(1)));
  S.addEQ(var("i"), var("j"));
  EXPECT_TRUE(S.isEmpty());
}

class IntervalSweep : public ::testing::TestWithParam<int> {};

// Property: [0, P) intersected with [P, 2P) is empty; [0, P) with
// [P-1, 2P) is not (P >= 1).
TEST_P(IntervalSweep, DisjointAdjacentIntervals) {
  int P = GetParam();
  AffineSet S;
  S.addLE(lin(0), var("x"));
  S.addLT(var("x"), lin(P));
  S.addLE(lin(P), var("x"));
  EXPECT_TRUE(S.isEmpty());

  AffineSet T;
  T.addLE(lin(0), var("x"));
  T.addLT(var("x"), lin(P));
  T.addLE(lin(P - 1), var("x"));
  EXPECT_FALSE(T.isEmpty());
}

// Property: {x == K*k, x == K*m + r} empty iff r % K != 0.
TEST_P(IntervalSweep, ModularArithmetic) {
  int K = GetParam() + 1; // >= 2
  for (int R = 0; R < K; ++R) {
    AffineSet S;
    S.addEQ(var("x"), scale(var("k"), K));
    S.addEQ(var("x"), add(scale(var("m"), K), lin(R)));
    EXPECT_EQ(S.isEmpty(), R % K != 0) << "K=" << K << " R=" << R;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntervalSweep, ::testing::Range(1, 9));

TEST(AffineSetTest, ManyVariablesStillTerminates) {
  // A chain x0 <= x1 <= ... <= x15 <= x0 - 1 is empty.
  AffineSet S;
  for (int I = 0; I < 15; ++I)
    S.addLE(var("x" + std::to_string(I)), var("x" + std::to_string(I + 1)));
  S.addLE(var("x15"), add(var("x0"), lin(-1)));
  EXPECT_TRUE(S.isEmpty());
}

} // namespace
