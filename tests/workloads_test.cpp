//===- tests/workloads_test.cpp - The four §6.1 workloads ------------------===//
//
// Cross-checks the three implementations of every workload (FreeTensor DSL
// via the interpreter, EagerTensor operator chains, naive loops) on the
// same deterministic data, and sanity-checks the instrumentation that
// Figure 17 relies on (kernel counts, materialized bytes).
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <gtest/gtest.h>

#include "interp/interp.h"
#include "workloads/workloads.h"

using namespace ft;
using namespace ft::workloads;

namespace {

void expectClose(const float *A, const float *B, int64_t N, double Tol,
                 const char *What) {
  for (int64_t I = 0; I < N; ++I)
    ASSERT_NEAR(A[I], B[I], Tol) << What << " element " << I;
}

TEST(WorkloadsTest, SubdivNetThreeWayAgreement) {
  SubdivNetConfig C{64, 8};
  SubdivNetData D = makeSubdivNetData(C);

  // FreeTensor (interpreted).
  Func F = buildSubdivNet(C);
  Buffer YFt(DataType::Float32, {C.NFaces, C.Feats});
  interpret(F, {{"e", &D.E}, {"adj", &D.Adj}, {"y", &YFt}});

  // Naive.
  std::vector<float> YNaive(C.NFaces * C.Feats);
  subdivnetNaive(C, D.E.as<float>(), D.Adj.as<int64_t>(), YNaive.data());

  // Eager.
  eager::resetStats();
  eager::clearTape();
  eager::Tensor E = eager::Tensor::fromVec(
      {C.NFaces, C.Feats},
      std::vector<float>(D.E.as<float>(), D.E.as<float>() + D.E.numel()));
  eager::IndexTensor Adj = eager::IndexTensor::fromVec(
      {C.NFaces, 3}, std::vector<int64_t>(D.Adj.as<int64_t>(),
                                          D.Adj.as<int64_t>() +
                                              D.Adj.numel()));
  eager::Tensor YE = subdivnetEager(E, Adj, C);

  expectClose(YFt.as<float>(), YNaive.data(), YFt.numel(), 1e-4,
              "ft-vs-naive");
  expectClose(YE.data(), YNaive.data(), YE.numel(), 1e-4, "eager-vs-naive");

  // The operator chain launches >= 6 kernels (paper Fig. 17: "no less
  // than 6 kernel invocations"); FreeTensor runs the whole layer in one.
  EXPECT_GE(eager::stats().KernelLaunches, 6);
  // The gathered adj_feat tensor materializes n*3*f floats (Fig. 2(b)).
  EXPECT_GE(eager::stats().BytesAllocated, C.NFaces * 3 * C.Feats * 4);
}

TEST(WorkloadsTest, LongformerThreeWayAgreement) {
  LongformerConfig C{48, 8, 4};
  LongformerData D = makeLongformerData(C);

  Func F = buildLongformer(C);
  Buffer YFt(DataType::Float32, {C.SeqLen, C.Feats});
  interpret(F, {{"Q", &D.Q}, {"K", &D.K}, {"V", &D.V}, {"y", &YFt}});

  std::vector<float> YNaive(C.SeqLen * C.Feats);
  longformerNaive(C, D.Q.as<float>(), D.K.as<float>(), D.V.as<float>(),
                  YNaive.data());

  eager::resetStats();
  eager::clearTape();
  auto ToEager = [](const Buffer &B) {
    return eager::Tensor::fromVec(
        B.shape(),
        std::vector<float>(B.as<float>(), B.as<float>() + B.numel()));
  };
  eager::Tensor YE =
      longformerEager(ToEager(D.Q), ToEager(D.K), ToEager(D.V), C);

  expectClose(YFt.as<float>(), YNaive.data(), YFt.numel(), 1e-4,
              "ft-vs-naive");
  expectClose(YE.data(), YNaive.data(), YE.numel(), 1e-4, "eager-vs-naive");

  // The baseline materializes the K and V sliding windows (Fig. 1(b)):
  // two tensors of n * (2w+1) * d floats.
  EXPECT_GE(eager::stats().BytesAllocated,
            2 * C.SeqLen * (2 * C.W + 1) * C.Feats * 4);
}

TEST(WorkloadsTest, SoftRasThreeWayAgreement) {
  SoftRasConfig C{24, 12, 12, 0.05f};
  SoftRasData D = makeSoftRasData(C);

  Func F = buildSoftRas(C);
  Buffer Img(DataType::Float32, {C.numPixels()});
  interpret(F, {{"verts", &D.Verts}, {"px", &D.Px}, {"py", &D.Py},
                {"img", &Img}});

  std::vector<float> ImgNaive(C.numPixels());
  softrasNaive(C, D.Verts.as<float>(), D.Px.as<float>(), D.Py.as<float>(),
               ImgNaive.data());

  eager::resetStats();
  eager::clearTape();
  SoftRasEagerInputs In = makeSoftRasEagerInputs(D, /*RequiresGrad=*/false);
  eager::Tensor ImgE = softrasEager(In, C);

  expectClose(Img.as<float>(), ImgNaive.data(), Img.numel(), 1e-3,
              "ft-vs-naive");
  expectClose(ImgE.data(), ImgNaive.data(), ImgE.numel(), 1e-3,
              "eager-vs-naive");
  // "Combining a large number of operators" (paper §6.2).
  EXPECT_GE(eager::stats().KernelLaunches, 15);

  // The image must actually contain coverage (not all zeros).
  float Mx = 0;
  for (int64_t I = 0; I < Img.numel(); ++I)
    Mx = std::max(Mx, Img.as<float>()[I]);
  EXPECT_GT(Mx, 0.5f);
}

TEST(WorkloadsTest, GATThreeWayAgreement) {
  GATConfig C{96, 8, 4};
  GATData D = makeGATData(C);

  Func F = buildGAT(C);
  Buffer YFt(DataType::Float32, {C.NNodes, C.Feats});
  interpret(F, {{"h", &D.H}, {"adj", &D.Adj}, {"a1", &D.A1},
                {"a2", &D.A2}, {"y", &YFt}});

  std::vector<float> YNaive(C.NNodes * C.Feats);
  gatNaive(C, D.H.as<float>(), D.Adj.as<int64_t>(), D.A1.as<float>(),
           D.A2.as<float>(), YNaive.data());

  eager::resetStats();
  eager::clearTape();
  eager::Tensor H = eager::Tensor::fromVec(
      {C.NNodes, C.Feats},
      std::vector<float>(D.H.as<float>(), D.H.as<float>() + D.H.numel()));
  eager::Tensor A1 = eager::Tensor::fromVec(
      {C.Feats}, std::vector<float>(D.A1.as<float>(),
                                    D.A1.as<float>() + C.Feats));
  eager::Tensor A2 = eager::Tensor::fromVec(
      {C.Feats}, std::vector<float>(D.A2.as<float>(),
                                    D.A2.as<float>() + C.Feats));
  std::vector<int64_t> AdjV(D.Adj.as<int64_t>(),
                            D.Adj.as<int64_t>() + D.Adj.numel());
  std::vector<int64_t> SelfV(C.NNodes * C.Degree);
  for (int64_t I = 0; I < C.NNodes; ++I)
    for (int64_t M = 0; M < C.Degree; ++M)
      SelfV[I * C.Degree + M] = I;
  eager::IndexTensor AdjFlat =
      eager::IndexTensor::fromVec({C.NNodes * C.Degree}, AdjV);
  eager::IndexTensor SelfFlat =
      eager::IndexTensor::fromVec({C.NNodes * C.Degree}, SelfV);
  eager::Tensor YE = gatEager(H, AdjFlat, SelfFlat, A1, A2, C);

  expectClose(YFt.as<float>(), YNaive.data(), YFt.numel(), 1e-4,
              "ft-vs-naive");
  expectClose(YE.data(), YNaive.data(), YE.numel(), 1e-4, "eager-vs-naive");
}

TEST(WorkloadsTest, EagerAutogradRunsOnSubdivNet) {
  SubdivNetConfig C{32, 4};
  SubdivNetData D = makeSubdivNetData(C);
  eager::resetStats();
  eager::clearTape();
  eager::Tensor E = eager::Tensor::fromVec(
      {C.NFaces, C.Feats},
      std::vector<float>(D.E.as<float>(), D.E.as<float>() + D.E.numel()),
      /*RequiresGrad=*/true);
  eager::IndexTensor Adj = eager::IndexTensor::fromVec(
      {C.NFaces, 3}, std::vector<int64_t>(D.Adj.as<int64_t>(),
                                          D.Adj.as<int64_t>() +
                                              D.Adj.numel()));
  eager::Tensor Y = subdivnetEager(E, Adj, C);
  eager::Tensor Loss = eager::sumAll(Y);
  eager::backward(Loss);
  eager::Tensor G = E.grad();
  // Finite-difference check on a few elements.
  for (int64_t Probe : {int64_t(0), int64_t(7), int64_t(63)}) {
    const float Eps = 1e-2f;
    auto Eval = [&](float Delta) {
      std::vector<float> EV(D.E.as<float>(),
                            D.E.as<float>() + D.E.numel());
      EV[Probe] += Delta;
      eager::clearTape();
      eager::Tensor E2 =
          eager::Tensor::fromVec({C.NFaces, C.Feats}, EV);
      eager::Tensor Y2 = subdivnetEager(E2, Adj, C);
      double S = 0;
      for (int64_t I = 0; I < Y2.numel(); ++I)
        S += Y2.data()[I];
      return S;
    };
    double Num = (Eval(Eps) - Eval(-Eps)) / (2 * Eps);
    EXPECT_NEAR(G.data()[Probe], Num, 0.05) << "probe " << Probe;
  }
}

} // namespace
