//===- tests/specialize_test.cpp - Shape-bucket specialization ------------===//
//
// The shape-generic kernel machinery (analysis/extents.h, pass/specialize.h)
// and its serving-side promotion path:
//   - extent-parameter discovery: 0-D integer Input params used in shapes
//     or loop bounds are the extent spec; static programs have none;
//   - evalExtentExpr folds shape arithmetic under bindings;
//   - specializeFunc constant-folds the extents away while preserving the
//     parameter list (ABI) — the specialized kernel binds the same request;
//   - the cache fingerprint separates generic from specialized programs and
//     distinct specializations from each other;
//   - executor promotion: a hot shape bucket gets a background specialized
//     compile that hot-swaps in behind the same entry, with bit-identical
//     results to the generic kernel;
//   - FT_SPECIALIZE=0 disables nomination; SpecializeMax caps buckets.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <gtest/gtest.h>
#include <unistd.h>

#include "analysis/extents.h"
#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "frontend/builder.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "pass/specialize.h"
#include "serve/serve.h"
#include "serve/telemetry.h"

using namespace ft;
using namespace ft::serve;

namespace {

Expr ic(int64_t V) { return makeIntConst(V); }

/// y[i] = x[i] * 2 + 1 over a symbolic extent `n`.
Func makeDynAxpy() {
  FunctionBuilder B("dynaxpy");
  Expr N = B.scalarInput("n");
  View X = B.input("x", {N});
  View Y = B.output("y", {N});
  B.loop("i", ic(0), N, [&](Expr I) {
    Y[I].assign(X[I].load() * makeFloatConst(2.0) + makeFloatConst(1.0));
  });
  return B.build();
}

void seed(Buffer &B, double Phase = 0.37) {
  for (int64_t I = 0; I < B.numel(); ++I)
    B.setF(I, std::sin(Phase * double(I)));
}

/// Fresh private cache dir per test; no FT_SERVE_* / FT_SPECIALIZE_*
/// leakage between tests.
class SpecializeTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Tmpl[] = "/tmp/ftspec.XXXXXX";
    ASSERT_NE(::mkdtemp(Tmpl), nullptr);
    Dir = Tmpl;
    ::setenv("FT_CACHE_DIR", Dir.c_str(), 1);
    ::setenv("FT_CACHE", "1", 1);
    for (const char *V :
         {"FT_SERVE_THREADS", "FT_SERVE_QUEUE_CAP", "FT_SERVE_ON_FULL",
          "FT_SERVE_BATCH_WINDOW_US", "FT_SERVE_MAX_BATCH",
          "FT_SERVE_OPT_FLAGS", "FT_SERVE_RT_THREADS", "FT_TELEMETRY_DIR",
          "FT_SPECIALIZE", "FT_SPECIALIZE_AFTER", "FT_SPECIALIZE_MAX",
          "FT_SPECIALIZE_OPT_FLAGS"})
      ::unsetenv(V);
    telemetry::setEnabled(false);
    telemetry::reset();
    kernel_cache::memReset();
  }
  void TearDown() override {
    ::unsetenv("FT_CACHE_DIR");
    ::unsetenv("FT_CACHE");
    telemetry::setEnabled(false);
    telemetry::reset();
    kernel_cache::memReset();
    std::system(("rm -rf '" + Dir + "'").c_str());
  }
  std::string Dir;
};

} // namespace

TEST(ExtentSpecTest, DiscoversExtentParams) {
  Func F = makeDynAxpy();
  ExtentSpec S = extentParamsOf(F);
  ASSERT_EQ(S.Params.size(), 1u);
  EXPECT_EQ(S.Params[0], "n");
  EXPECT_TRUE(S.contains("n"));
  EXPECT_FALSE(S.contains("x"));
}

TEST(ExtentSpecTest, StaticProgramHasNoExtents) {
  FunctionBuilder B("axpy");
  View X = B.input("x", {ic(16)});
  View Y = B.output("y", {ic(16)});
  B.loop("i", 0, 16, [&](Expr I) { Y[I].assign(X[I].load()); });
  EXPECT_TRUE(extentParamsOf(B.build()).empty());
}

TEST(ExtentSpecTest, ScalarParamNotUsedInShapeIsNotAnExtent) {
  // A 0-D integer param used only as a *value* (not a shape or bound) is
  // an ordinary argument, not an extent.
  FunctionBuilder B("shift");
  Expr S = B.scalarInput("s");
  View X = B.input("x", {ic(8)}, DataType::Int64);
  View Y = B.output("y", {ic(8)}, DataType::Int64);
  B.loop("i", 0, 8, [&](Expr I) { Y[I].assign(X[I].load() + S); });
  EXPECT_TRUE(extentParamsOf(B.build()).empty());
}

TEST(ExtentSpecTest, EvalExtentExprFolds) {
  std::map<std::string, int64_t> Bind{{"n", 10}, {"m", 3}};
  Expr N = makeLoad("n", {}, DataType::Int64);
  Expr M = makeLoad("m", {}, DataType::Int64);
  EXPECT_EQ(evalExtentExpr(makeAdd(N, M), Bind), 13);
  EXPECT_EQ(evalExtentExpr(makeMul(N, ic(4)), Bind), 40);
  EXPECT_EQ(evalExtentExpr(makeSub(M, N), Bind), -7);
  // Unbound name: no fold.
  EXPECT_FALSE(
      evalExtentExpr(makeLoad("q", {}, DataType::Int64), Bind).has_value());
}

TEST(ExtentSpecTest, BuilderRejectsUndeclaredExtent) {
  // A tensor whose shape references a scalar declared *after* it must be
  // rejected at build() time: the VarDef nest would put the extent out of
  // scope where codegen emits the dimension locals.
  EXPECT_DEATH(
      {
        FunctionBuilder B("bad");
        Expr N = makeLoad("n", {}, DataType::Int64);
        B.input("x", {N});
        B.scalarInput("n");
        B.build();
      },
      "not declared before");
}

TEST_F(SpecializeTest, SpecializeFuncConstantFoldsExtents) {
  Func F = makeDynAxpy();
  Func S = specializeFunc(F, {{"n", 24}});
  // Parameter list (the ABI) is preserved — `n` stays a bound argument.
  EXPECT_EQ(S.Params, F.Params);
  // But no extent remains symbolic.
  EXPECT_TRUE(extentParamsOf(S).empty());
  // And the printed program now carries the literal 24.
  EXPECT_NE(toString(S.Body).find("24"), std::string::npos);

  // Same semantics at the bound shape.
  Buffer NB = Buffer::scalarI64(24);
  Buffer X(DataType::Float32, {24}), YG(DataType::Float32, {24}),
      YS(DataType::Float32, {24});
  seed(X);
  interpret(F, {{"n", &NB}, {"x", &X}, {"y", &YG}});
  interpret(S, {{"n", &NB}, {"x", &X}, {"y", &YS}});
  EXPECT_EQ(std::memcmp(YG.raw(), YS.raw(), 24 * sizeof(float)), 0);
}

TEST_F(SpecializeTest, FingerprintsSeparateGenericAndSpecialized) {
  Func F = makeDynAxpy();
  uint64_t Generic = kernel_cache::cacheKey(F, {}, "-O2").Full;
  uint64_t At16 =
      kernel_cache::cacheKey(specializeFunc(F, {{"n", 16}}), {}, "-O2").Full;
  uint64_t At32 =
      kernel_cache::cacheKey(specializeFunc(F, {{"n", 32}}), {}, "-O2").Full;
  EXPECT_NE(Generic, At16);
  EXPECT_NE(At16, At32);
  // The generic fingerprint is shape-independent by construction: the same
  // Func serves every n, so every shape maps to one cache entry.
  EXPECT_EQ(Generic, kernel_cache::cacheKey(makeDynAxpy(), {}, "-O2").Full);
}

TEST_F(SpecializeTest, HotBucketPromotesToSpecializedBitIdentical) {
  Func F = makeDynAxpy();
  Config C;
  C.Threads = 2;
  C.BatchWindowUs = 0;
  C.Specialize = true;
  C.SpecializeAfter = 5;
  C.SpecializeMax = 2;
  Executor Ex(C);

  constexpr int64_t N = 96;
  Buffer NB = Buffer::scalarI64(N);
  Buffer X(DataType::Float32, {N}), Y(DataType::Float32, {N});
  seed(X);
  std::map<std::string, Buffer *> Args{{"n", &NB}, {"x", &X}, {"y", &Y}};

  // Serve until the generic JIT kernel answers, then capture its output.
  std::vector<float> YGeneric;
  for (int I = 0; I < 200 && YGeneric.empty(); ++I) {
    auto R = Ex.submit(F, Args);
    ASSERT_TRUE(R.ok());
    Response Resp = R->get();
    ASSERT_TRUE(Resp.S.ok()) << Resp.S.message();
    if (Resp.ServedBy == Tier::Jit && !Resp.Specialized)
      YGeneric.assign(Y.as<float>(), Y.as<float>() + N);
    else
      Ex.drain(); // bound the wait on the background generic compile
  }
  ASSERT_FALSE(YGeneric.empty()) << "generic kernel never served";

  // Keep hammering the same shape bucket until the specialized kernel
  // hot-swaps in (nomination at SpecializeAfter hits, then a background
  // compile, then Ready). drain() bounds the wait on the compile.
  std::vector<float> YSpec;
  for (int I = 0; I < 200 && YSpec.empty(); ++I) {
    auto R = Ex.submit(F, Args);
    ASSERT_TRUE(R.ok());
    Response Resp = R->get();
    ASSERT_TRUE(Resp.S.ok()) << Resp.S.message();
    if (Resp.Specialized)
      YSpec.assign(Y.as<float>(), Y.as<float>() + N);
    else
      Ex.drain();
  }
  ASSERT_FALSE(YSpec.empty()) << "specialized kernel never promoted";

  // The hot swap must be invisible: bit-identical outputs.
  EXPECT_EQ(std::memcmp(YGeneric.data(), YSpec.data(), N * sizeof(float)),
            0);

  ServeStats St = Ex.stats();
  EXPECT_EQ(St.SpecCompilesStarted, 1u);
  EXPECT_EQ(St.SpecCompilesFailed, 0u);
  EXPECT_GE(St.SpecServed, 1u);
  Ex.shutdown();
}

TEST_F(SpecializeTest, SpecializeOffServesGenericOnly) {
  Func F = makeDynAxpy();
  Config C;
  C.BatchWindowUs = 0;
  C.Specialize = false;
  C.SpecializeAfter = 1;
  Executor Ex(C);

  constexpr int64_t N = 32;
  Buffer NB = Buffer::scalarI64(N);
  Buffer X(DataType::Float32, {N}), Y(DataType::Float32, {N});
  seed(X);
  std::map<std::string, Buffer *> Args{{"n", &NB}, {"x", &X}, {"y", &Y}};
  for (int I = 0; I < 20; ++I) {
    auto R = Ex.submit(F, Args);
    ASSERT_TRUE(R.ok());
    Response Resp = R->get();
    ASSERT_TRUE(Resp.S.ok());
    EXPECT_FALSE(Resp.Specialized);
    Ex.drain();
  }
  ServeStats St = Ex.stats();
  EXPECT_EQ(St.SpecCompilesStarted, 0u);
  EXPECT_EQ(St.SpecServed, 0u);
  Ex.shutdown();
}

TEST_F(SpecializeTest, SpecializeMaxCapsBuckets) {
  Func F = makeDynAxpy();
  Config C;
  C.BatchWindowUs = 0;
  C.Specialize = true;
  C.SpecializeAfter = 1;
  C.SpecializeMax = 1; // only ONE bucket may specialize
  Executor Ex(C);

  for (int64_t N : {16, 24, 48}) {
    Buffer NB = Buffer::scalarI64(N);
    Buffer X(DataType::Float32, {N}), Y(DataType::Float32, {N});
    seed(X);
    std::map<std::string, Buffer *> Args{{"n", &NB}, {"x", &X}, {"y", &Y}};
    for (int I = 0; I < 5; ++I) {
      auto R = Ex.submit(F, Args);
      ASSERT_TRUE(R.ok());
      ASSERT_TRUE(R->get().S.ok());
    }
    Ex.drain();
  }
  ServeStats St = Ex.stats();
  EXPECT_LE(St.SpecCompilesStarted, 1u);
  Ex.shutdown();
}
