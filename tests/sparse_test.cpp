//===- tests/sparse_test.cpp - CSR / segment-loop workloads ---------------===//
//
// The ragged subsystem end to end (DESIGN.md §17):
//   - analyzeRagged discovers segment loops, index tensors, and nnz-sized
//     dims of the sparse workload builders;
//   - interpreter, JIT, and serving executor all agree with the plain-C++
//     naive oracles on SpMM, SDDMM, and segment-softmax;
//   - schedule legality: `parallelize` on the outer row loop is PROVEN
//     legal from the indptr monotonicity facts (including SDDMM, whose
//     out_val[j] write needs segment disjointness), while `vectorize` on
//     the data-dependent inner loop is rejected with an audit reason;
//   - the indptr runtime contract is enforced on both tiers as typed
//     errors: decreasing, negative, and out-of-range index tensors;
//   - the frontend rejects malformed data-dependent bounds at build();
//   - edge cases: empty rows, a fully-empty matrix, a single row;
//   - differential fuzz: CSR SpMM vs a dense-masked interpreter oracle;
//   - serving: nnz-bucketed shape keys collapse same-octave sparsities
//     into ONE specialization bucket, and the one specialized kernel
//     (residual symbolic nnz) serves a different exact nnz correctly.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <cstdlib>
#include <gtest/gtest.h>
#include <unistd.h>

#include "analysis/ragged.h"
#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "frontend/builder.h"
#include "interp/interp.h"
#include "schedule/schedule.h"
#include "serve/serve.h"
#include "serve/shape_key.h"
#include "serve/telemetry.h"
#include "support/trace.h"
#include "workloads/sparse_workloads.h"

using namespace ft;
using namespace ft::workloads;

namespace {

Expr ic(int64_t V) { return makeIntConst(V); }
Expr fc(double V) { return makeFloatConst(V); }

double maxDiff(const Buffer &Got, const std::vector<float> &Want) {
  EXPECT_EQ(Got.numel(), static_cast<int64_t>(Want.size()));
  double M = 0;
  for (int64_t I = 0; I < Got.numel(); ++I)
    M = std::max(M, double(std::fabs(float(Got.getF(I)) - Want[I])));
  return M;
}

std::map<std::string, Buffer *> argsOf(std::map<std::string, Buffer> &S) {
  std::map<std::string, Buffer *> A;
  for (auto &[N, B] : S)
    A[N] = &B;
  return A;
}

/// A CSR with an exact chosen Nnz: entries spread as evenly as the row
/// count allows, columns deterministic. Lets tests pin two sparsities into
/// the same (or different) power-of-two buckets.
SparseCSR makeUniformCSR(int64_t Rows, int64_t Cols, int64_t Nnz) {
  SparseCSR A;
  A.Rows = Rows;
  A.Cols = Cols;
  A.Nnz = Nnz;
  A.Indptr = Buffer(DataType::Int64, {Rows + 1});
  A.Indices = Buffer(DataType::Int64, {Nnz});
  A.Val = Buffer(DataType::Float32, {Nnz});
  int64_t Per = Nnz / Rows, Extra = Nnz % Rows, At = 0;
  for (int64_t I = 0; I < Rows; ++I) {
    A.Indptr.setI(I, At);
    At += Per + (I < Extra ? 1 : 0);
  }
  A.Indptr.setI(Rows, At);
  for (int64_t J = 0; J < Nnz; ++J) {
    A.Indices.setI(J, (J * 13 + 7) % Cols);
    A.Val.setF(J, std::sin(0.31 * double(J)));
  }
  return A;
}

/// Small configs keep interpreter runs and JIT compiles fast.
SpMMConfig smallSpMM() {
  SpMMConfig C;
  C.Rows = 48;
  C.Cols = 32;
  C.Feats = 8;
  C.AvgDeg = 4;
  return C;
}

SDDMMConfig smallSDDMM() {
  SDDMMConfig C;
  C.Rows = 48;
  C.Cols = 32;
  C.Feats = 8;
  C.AvgDeg = 4;
  return C;
}

SegSoftmaxConfig smallSegSoftmax() {
  SegSoftmaxConfig C;
  C.Nodes = 48;
  C.Feats = 8;
  C.AvgDeg = 4;
  return C;
}

std::map<std::string, Buffer> spmmStore(const SpMMConfig &C, SpMMData &D) {
  std::map<std::string, Buffer> S;
  S.emplace("indptr", std::move(D.A.Indptr));
  S.emplace("indices", std::move(D.A.Indices));
  S.emplace("val", std::move(D.A.Val));
  S.emplace("x", std::move(D.X));
  S.emplace("y", Buffer(DataType::Float32, {C.Rows, C.Feats}));
  return S;
}

class SparseTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Tmpl[] = "/tmp/ftsparse.XXXXXX";
    ASSERT_NE(::mkdtemp(Tmpl), nullptr);
    Dir = Tmpl;
    ::setenv("FT_CACHE_DIR", Dir.c_str(), 1);
    ::setenv("FT_CACHE", "1", 1);
    serve::telemetry::setEnabled(false);
    serve::telemetry::reset();
    kernel_cache::memReset();
  }
  void TearDown() override {
    ::unsetenv("FT_CACHE_DIR");
    ::unsetenv("FT_CACHE");
    trace::setAuditEnabled(false);
    serve::telemetry::setEnabled(false);
    serve::telemetry::reset();
    kernel_cache::memReset();
    std::system(("rm -rf '" + Dir + "'").c_str());
  }
  std::string Dir;
};

} // namespace

//===----------------------------------------------------------------------===//
// Ragged analysis
//===----------------------------------------------------------------------===//

TEST_F(SparseTest, AnalyzeRaggedDiscoversStructure) {
  RaggedInfo RI = analyzeRagged(buildSpMMDyn(smallSpMM()));
  ASSERT_FALSE(RI.empty());
  ASSERT_EQ(RI.IndexTensors.size(), 1u);
  EXPECT_EQ(RI.IndexTensors[0], "indptr");
  EXPECT_FALSE(RI.Loops.empty());
  // `indices` and `val` are addressed at the segment iterator: their
  // leading dim is nnz-sized and gated by indptr's last value.
  ASSERT_TRUE(RI.RaggedDims.count("val"));
  EXPECT_TRUE(RI.RaggedDims.at("val").count(0));
  ASSERT_TRUE(RI.RaggedDims.count("indices"));
  ASSERT_TRUE(RI.BoundedParams.count("indptr"));
  EXPECT_TRUE(RI.BoundedParams.at("indptr").count("val"));
  EXPECT_TRUE(RI.BoundedParams.at("indptr").count("indices"));
  // The extent `nnz` sizes ragged dims; `m` sizes dense ones.
  EXPECT_TRUE(RI.isRaggedExtent("nnz"));
  EXPECT_FALSE(RI.isRaggedExtent("m"));

  // A dense program has no ragged structure at all.
  EXPECT_TRUE(analyzeRagged(buildSpMM(smallSpMM(), 16)).empty() ==
              analyzeRagged(buildSpMM(smallSpMM(), 16)).empty());
  FunctionBuilder B("dense");
  View X = B.input("x", {ic(4)});
  View Y = B.output("y", {ic(4)});
  B.loop("i", ic(0), ic(4), [&](Expr I) { Y[I].assign(X[I].load()); });
  EXPECT_TRUE(analyzeRagged(B.build()).empty());
}

//===----------------------------------------------------------------------===//
// Interpreter correctness vs naive oracles
//===----------------------------------------------------------------------===//

TEST_F(SparseTest, InterpSpMMMatchesNaive) {
  SpMMConfig C = smallSpMM();
  SpMMData D = makeSpMMData(C);
  SparseCSR A = D.A; // Copy before the store moves the buffers.
  std::vector<float> Want(C.Rows * C.Feats);
  spmmNaive(C, A, D.X.as<float>(), Want.data());
  Func F = buildSpMM(C, A.Nnz);
  auto S = spmmStore(C, D);
  auto Args = argsOf(S);
  ASSERT_TRUE(interpretChecked(F, Args).ok());
  EXPECT_LT(maxDiff(S.at("y"), Want), 1e-5);
}

TEST_F(SparseTest, InterpSDDMMMatchesNaive) {
  SDDMMConfig C = smallSDDMM();
  SDDMMData D = makeSDDMMData(C);
  std::vector<float> Want(D.A.Nnz);
  sddmmNaive(C, D.A, D.Da.as<float>(), D.Db.as<float>(), Want.data());
  Func F = buildSDDMM(C, D.A.Nnz);
  Buffer Out(DataType::Float32, {D.A.Nnz});
  std::map<std::string, Buffer *> Args{
      {"indptr", &D.A.Indptr}, {"indices", &D.A.Indices}, {"val", &D.A.Val},
      {"a", &D.Da},            {"b", &D.Db},              {"out_val", &Out}};
  ASSERT_TRUE(interpretChecked(F, Args).ok());
  EXPECT_LT(maxDiff(Out, Want), 1e-5);
}

TEST_F(SparseTest, InterpSegSoftmaxMatchesNaive) {
  SegSoftmaxConfig C = smallSegSoftmax();
  SegSoftmaxData D = makeSegSoftmaxData(C);
  std::vector<float> Want(C.Nodes * C.Feats);
  segSoftmaxNaive(C, D.G, D.H.as<float>(), Want.data());
  Func F = buildSegSoftmax(C, D.G.Nnz);
  Buffer Y(DataType::Float32, {C.Nodes, C.Feats});
  std::map<std::string, Buffer *> Args{{"indptr", &D.G.Indptr},
                                       {"indices", &D.G.Indices},
                                       {"e", &D.G.Val},
                                       {"h", &D.H},
                                       {"y", &Y}};
  ASSERT_TRUE(interpretChecked(F, Args).ok());
  EXPECT_LT(maxDiff(Y, Want), 1e-5);
}

//===----------------------------------------------------------------------===//
// JIT correctness + per-call contract re-check
//===----------------------------------------------------------------------===//

TEST_F(SparseTest, JitSpMMMatchesNaiveAndRechecksIndptr) {
  SpMMConfig C = smallSpMM();
  SpMMData D = makeSpMMData(C);
  SparseCSR A = D.A;
  std::vector<float> Want(C.Rows * C.Feats);
  spmmNaive(C, A, D.X.as<float>(), Want.data());
  Func F = buildSpMM(C, A.Nnz);
  auto K = Kernel::compile(F);
  ASSERT_TRUE(K.ok()) << K.message();
  auto S = spmmStore(C, D);
  auto Args = argsOf(S);
  ASSERT_TRUE(K->run(Args).ok());
  EXPECT_LT(maxDiff(S.at("y"), Want), 1e-5);

  // Corrupt the indptr AFTER compiling: the kernel must re-check the
  // contract per call — compiled code has no bounds checks of its own.
  int64_t Keep = S.at("indptr").getI(1);
  S.at("indptr").setI(1, S.at("indptr").getI(2) + 5);
  Status Bad = K->run(Args);
  ASSERT_FALSE(Bad.ok());
  EXPECT_NE(Bad.message().find("non-decreasing"), std::string::npos)
      << Bad.message();
  S.at("indptr").setI(1, Keep);
  EXPECT_TRUE(K->run(Args).ok());
}

TEST_F(SparseTest, JitDynSegSoftmaxMatchesInterp) {
  SegSoftmaxConfig C = smallSegSoftmax();
  SegSoftmaxData D = makeSegSoftmaxData(C);
  Func F = buildSegSoftmaxDyn(C);
  auto K = Kernel::compile(F);
  ASSERT_TRUE(K.ok()) << K.message();
  Buffer M = Buffer::scalarI64(C.Nodes);
  Buffer Nnz = Buffer::scalarI64(D.G.Nnz);
  Buffer YJ(DataType::Float32, {C.Nodes, C.Feats});
  Buffer YI(DataType::Float32, {C.Nodes, C.Feats});
  std::map<std::string, Buffer *> Args{
      {"m", &M},       {"nnz", &Nnz},  {"indptr", &D.G.Indptr},
      {"indices", &D.G.Indices}, {"e", &D.G.Val}, {"h", &D.H},
      {"y", &YJ}};
  ASSERT_TRUE(K->run(Args).ok());
  Args["y"] = &YI;
  ASSERT_TRUE(interpretChecked(F, Args).ok());
  for (int64_t I = 0; I < YJ.numel(); ++I)
    ASSERT_NEAR(YJ.getF(I), YI.getF(I), 1e-5) << "at " << I;
}

//===----------------------------------------------------------------------===//
// Schedule legality: rows parallelize, segments don't vectorize
//===----------------------------------------------------------------------===//

TEST_F(SparseTest, RowLoopsParallelizeSegmentLoopsReject) {
  struct Case {
    Func F;
    const char *RowLabel;
    const char *SegLabel;
  };
  SpMMConfig SC = smallSpMM();
  SDDMMConfig DC = smallSDDMM();
  SegSoftmaxConfig GC = smallSegSoftmax();
  std::vector<Case> Cases;
  Cases.push_back({buildSpMM(SC, 200), "rows", "spmm_seg"});
  Cases.push_back({buildSpMMDyn(SC), "rows", "spmm_seg"});
  // SDDMM writes out_val[j] at the segment iterator: proving the row loop
  // parallel genuinely requires indptr[p.i+1] <= indptr[q.i] bridging.
  Cases.push_back({buildSDDMM(DC, 200), "rows", "sddmm_seg"});
  Cases.push_back({buildSDDMMDyn(DC), "rows", "sddmm_seg"});
  Cases.push_back({buildSegSoftmax(GC, 200), "nodes", "seg_agg"});
  Cases.push_back({buildSegSoftmaxDyn(GC), "nodes", "seg_agg"});

  trace::setAuditEnabled(true);
  for (Case &Tc : Cases) {
    size_t Base = trace::auditSize();
    Schedule S(Tc.F);
    auto Row = S.findByLabel(Tc.RowLabel);
    ASSERT_TRUE(Row.ok()) << Tc.F.Name;
    EXPECT_TRUE(S.parallelize(*Row).ok()) << Tc.F.Name;
    auto Seg = S.findByLabel(Tc.SegLabel);
    ASSERT_TRUE(Seg.ok()) << Tc.F.Name;
    Status V = S.vectorize(*Seg, 8);
    ASSERT_FALSE(V.ok()) << Tc.F.Name;
    EXPECT_NE(V.message().find("data-dependent"), std::string::npos)
        << Tc.F.Name << ": " << V.message();
    // Both decisions land in the audit log: the accept and the reasoned
    // rejection `ftc --profile` and check.sh grep for.
    bool SawAccept = false, SawReject = false;
    for (const trace::ScheduleDecision &D : trace::auditLogSince(Base)) {
      if (D.Primitive == "parallelize" && D.Applied)
        SawAccept = true;
      if (D.Primitive == "vectorize" && !D.Applied &&
          D.Reason.find("data-dependent") != std::string::npos)
        SawReject = true;
    }
    EXPECT_TRUE(SawAccept) << Tc.F.Name;
    EXPECT_TRUE(SawReject) << Tc.F.Name;
  }
  trace::setAuditEnabled(false);
}

//===----------------------------------------------------------------------===//
// Indptr runtime contract: typed errors on both tiers
//===----------------------------------------------------------------------===//

TEST_F(SparseTest, IndptrContractViolationsAreTypedErrors) {
  SpMMConfig C = smallSpMM();
  SpMMData D = makeSpMMData(C);
  Func F = buildSpMM(C, D.A.Nnz);
  auto S = spmmStore(C, D);
  auto Args = argsOf(S);
  ASSERT_TRUE(interpretChecked(F, Args).ok());

  // Decreasing.
  int64_t Keep = S.at("indptr").getI(1);
  S.at("indptr").setI(1, S.at("indptr").getI(2) + 3);
  Status Dec = interpretChecked(F, Args);
  ASSERT_FALSE(Dec.ok());
  EXPECT_NE(Dec.message().find("non-decreasing"), std::string::npos)
      << Dec.message();
  S.at("indptr").setI(1, Keep);

  // Negative start.
  S.at("indptr").setI(0, -2);
  Status Neg = interpretChecked(F, Args);
  ASSERT_FALSE(Neg.ok());
  EXPECT_NE(Neg.message().find("below zero"), std::string::npos)
      << Neg.message();
  S.at("indptr").setI(0, 0);

  // Last offset past the nnz extent of the tensors it gates.
  int64_t LastIdx = C.Rows;
  int64_t KeepLast = S.at("indptr").getI(LastIdx);
  S.at("indptr").setI(LastIdx, KeepLast + 7);
  Status Oob = interpretChecked(F, Args);
  ASSERT_FALSE(Oob.ok());
  EXPECT_NE(Oob.message().find("past the leading extent"), std::string::npos)
      << Oob.message();
  S.at("indptr").setI(LastIdx, KeepLast);
  EXPECT_TRUE(interpretChecked(F, Args).ok());

  // Direct checkIndptrArgs: a mis-shaped index tensor is its own error.
  RaggedInfo RI = analyzeRagged(F);
  Buffer Flat(DataType::Float32, {C.Rows + 1});
  auto BadArgs = Args;
  BadArgs["indptr"] = &Flat;
  Status Shape = checkIndptrArgs(RI, BadArgs);
  ASSERT_FALSE(Shape.ok());
  EXPECT_NE(Shape.message().find("1-D integer"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Frontend idiom validation at build()
//===----------------------------------------------------------------------===//

TEST_F(SparseTest, FrontendRejectsMalformedRaggedBounds) {
  // Bound reads a writable (Output) tensor.
  EXPECT_DEATH(
      {
        FunctionBuilder B("bad_writable");
        View P = B.output("p", {ic(5)}, DataType::Int64);
        View Y = B.output("y", {ic(8)});
        B.loop("i", ic(0), ic(4), [&](Expr I) {
          B.loop("j", P[I].load(), P[I + 1].load(),
                 [&](Expr J) { Y[J].assign(fc(1)); });
        });
        B.build();
      },
      "read-only Inputs");
  // Bound reads a 2-D tensor.
  EXPECT_DEATH(
      {
        FunctionBuilder B("bad_rank");
        View P = B.input("p", {ic(5), ic(2)}, DataType::Int64);
        View Y = B.output("y", {ic(8)});
        B.loop("i", ic(0), ic(4), [&](Expr I) {
          B.loop("j", P[I][ic(0)].load(), P[I][ic(1)].load(),
                 [&](Expr J) { Y[J].assign(fc(1)); });
        });
        B.build();
      },
      "not 1-D");
  // Bound reads a float tensor.
  EXPECT_DEATH(
      {
        FunctionBuilder B("bad_dtype");
        View P = B.input("p", {ic(5)});
        View Y = B.output("y", {ic(8)});
        B.loop("i", ic(0), ic(4), [&](Expr I) {
          B.loop("j", P[I].load(), P[I + 1].load(),
                 [&](Expr J) { Y[J].assign(fc(1)); });
        });
        B.build();
      },
      "not an integer tensor");
}

//===----------------------------------------------------------------------===//
// Segment edge cases
//===----------------------------------------------------------------------===//

TEST_F(SparseTest, EmptyRowsSingleRowAndEmptyMatrix) {
  // The generator's skew leaves about one row in seven empty — make sure
  // the property actually holds so the main differential tests exercise
  // empty segments.
  SpMMConfig C = smallSpMM();
  SpMMData D = makeSpMMData(C);
  bool HasEmpty = false;
  for (int64_t I = 0; I < C.Rows; ++I)
    HasEmpty |= D.A.Indptr.getI(I) == D.A.Indptr.getI(I + 1);
  EXPECT_TRUE(HasEmpty);

  // Single-row matrix.
  SpMMConfig C1 = smallSpMM();
  C1.Rows = 1;
  SpMMData D1 = makeSpMMData(C1);
  SparseCSR A1 = D1.A;
  std::vector<float> Want(C1.Feats);
  spmmNaive(C1, A1, D1.X.as<float>(), Want.data());
  Func F1 = buildSpMM(C1, A1.Nnz);
  auto S1 = spmmStore(C1, D1);
  auto Args1 = argsOf(S1);
  ASSERT_TRUE(interpretChecked(F1, Args1).ok());
  EXPECT_LT(maxDiff(S1.at("y"), Want), 1e-5);

  // Fully-empty matrix: nnz == 0, every segment empty. Static shapes may
  // be zero (the >= 1 extent contract applies to runtime extent
  // *parameters*), so this runs through the static builder.
  SpMMConfig C0 = smallSpMM();
  C0.Rows = 6;
  Func F0 = buildSpMM(C0, 0);
  std::map<std::string, Buffer> S0;
  S0.emplace("indptr", Buffer(DataType::Int64, {C0.Rows + 1}));
  S0.emplace("indices", Buffer(DataType::Int64, {0}));
  S0.emplace("val", Buffer(DataType::Float32, {0}));
  S0.emplace("x", Buffer(DataType::Float32, {C0.Cols, C0.Feats}));
  S0.emplace("y", Buffer(DataType::Float32, {C0.Rows, C0.Feats}));
  for (int64_t I = 0; I < S0.at("y").numel(); ++I)
    S0.at("y").setF(I, 99.0); // Must be overwritten with zeros.
  auto Args0 = argsOf(S0);
  ASSERT_TRUE(interpretChecked(F0, Args0).ok());
  for (int64_t I = 0; I < S0.at("y").numel(); ++I)
    EXPECT_EQ(S0.at("y").getF(I), 0.0);
}

//===----------------------------------------------------------------------===//
// Differential fuzz: CSR SpMM vs a dense-masked interpreter oracle
//===----------------------------------------------------------------------===//

namespace {

/// Dense matmul y = a @ x — the oracle. Interpreted on the densified CSR,
/// it must agree with the sparse program interpreted on the CSR itself.
Func buildDenseMM(int64_t Rows, int64_t Cols, int64_t Feats) {
  FunctionBuilder B("dense_mm");
  View A = B.input("a", {ic(Rows), ic(Cols)});
  View X = B.input("x", {ic(Cols), ic(Feats)});
  View Y = B.output("y", {ic(Rows), ic(Feats)});
  B.loop("i", ic(0), ic(Rows), [&](Expr I) {
    B.loop("k0", ic(0), ic(Feats), [&](Expr K) { Y[I][K].assign(fc(0)); });
    B.loop("c", ic(0), ic(Cols), [&](Expr Cc) {
      B.loop("k", ic(0), ic(Feats),
             [&](Expr K) { Y[I][K] += A[I][Cc].load() * X[Cc][K].load(); });
    });
  });
  return B.build();
}

} // namespace

TEST_F(SparseTest, FuzzSpMMAgainstDenseMaskedOracle) {
  const int64_t Rows = 24, Cols = 16, Feats = 4;
  Func Dense = buildDenseMM(Rows, Cols, Feats);
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    SpMMConfig C;
    C.Rows = Rows;
    C.Cols = Cols;
    C.Feats = Feats;
    C.AvgDeg = 1 + int64_t(Seed) % 5;
    C.Seed = 0x9e3779b97f4a7c15ull * Seed;
    SpMMData D = makeSpMMData(C);
    SparseCSR A = D.A;

    // Densify: duplicate column hits accumulate, exactly like the sparse
    // program's += over the segment.
    Buffer DenseA(DataType::Float32, {Rows, Cols});
    for (int64_t I = 0; I < Rows; ++I)
      for (int64_t J = A.Indptr.getI(I); J < A.Indptr.getI(I + 1); ++J) {
        int64_t Col = A.Indices.getI(J);
        int64_t Flat = I * Cols + Col;
        DenseA.setF(Flat, DenseA.getF(Flat) + A.Val.getF(J));
      }
    Buffer YD(DataType::Float32, {Rows, Feats});
    std::map<std::string, Buffer *> DenseArgs{
        {"a", &DenseA}, {"x", &D.X}, {"y", &YD}};
    ASSERT_TRUE(interpretChecked(Dense, DenseArgs).ok());

    Func F = buildSpMM(C, A.Nnz);
    Buffer YS(DataType::Float32, {Rows, Feats});
    std::map<std::string, Buffer *> SparseArgs{{"indptr", &A.Indptr},
                                               {"indices", &A.Indices},
                                               {"val", &A.Val},
                                               {"x", &D.X},
                                               {"y", &YS}};
    ASSERT_TRUE(interpretChecked(F, SparseArgs).ok());
    for (int64_t I = 0; I < YS.numel(); ++I)
      ASSERT_NEAR(YS.getF(I), YD.getF(I), 1e-4)
          << "seed " << Seed << " at " << I;
  }
}

//===----------------------------------------------------------------------===//
// Serving: nnz buckets, partial specialization
//===----------------------------------------------------------------------===//

TEST_F(SparseTest, BucketedShapeKeyCollapsesSameOctaveNnz) {
  SpMMConfig C = smallSpMM();
  RaggedInfo RI = analyzeRagged(buildSpMMDyn(C));
  auto StoreFor = [&](int64_t Nnz) {
    SparseCSR A = makeUniformCSR(C.Rows, C.Cols, Nnz);
    std::map<std::string, Buffer> S;
    S.emplace("m", Buffer::scalarI64(C.Rows));
    S.emplace("nnz", Buffer::scalarI64(Nnz));
    S.emplace("indptr", std::move(A.Indptr));
    S.emplace("indices", std::move(A.Indices));
    S.emplace("val", std::move(A.Val));
    S.emplace("x", Buffer(DataType::Float32, {C.Cols, C.Feats}));
    S.emplace("y", Buffer(DataType::Float32, {C.Rows, C.Feats}));
    return S;
  };
  auto SA = StoreFor(150), SB = StoreFor(200), SC2 = StoreFor(300);
  auto AA = argsOf(SA), AB = argsOf(SB), AC = argsOf(SC2);
  std::string KA = serve::bucketedShapeKeyOf(AA, RI);
  std::string KB = serve::bucketedShapeKeyOf(AB, RI);
  std::string KC = serve::bucketedShapeKeyOf(AC, RI);
  // 150 and 200 round to 256; 300 rounds to 512.
  EXPECT_EQ(KA, KB);
  EXPECT_NE(KA, KC);
  EXPECT_NE(KA.find("nnz:i64~256"), std::string::npos) << KA;
  EXPECT_NE(KA.find("val:f32[~256]"), std::string::npos) << KA;
  // Dense sizes stay exact.
  EXPECT_NE(KA.find("m:i64=" + std::to_string(C.Rows)), std::string::npos);
  // The exact key still distinguishes them (telemetry for dense programs).
  EXPECT_NE(serve::shapeKeyOf(AA), serve::shapeKeyOf(AB));
  // Bucketed segments parse as skips, dense extents as bindings.
  auto Ext = serve::parseScalarExtents(KA);
  ASSERT_TRUE(Ext.ok()) << Ext.message();
  ASSERT_EQ(Ext->size(), 1u);
  EXPECT_EQ(Ext->at("m"), C.Rows);
}

TEST_F(SparseTest, ExecutorSpecializesOneKernelPerNnzBucket) {
  SpMMConfig C = smallSpMM();
  Func F = buildSpMMDyn(C);
  serve::Config Cfg;
  Cfg.Threads = 1;
  Cfg.Specialize = true;
  Cfg.SpecializeAfter = 2;
  Cfg.SpecializeMax = 2;
  serve::Executor Ex(Cfg);

  auto RunOne = [&](int64_t Nnz, bool *Specialized) {
    SparseCSR A = makeUniformCSR(C.Rows, C.Cols, Nnz);
    Buffer M = Buffer::scalarI64(C.Rows);
    Buffer NnzB = Buffer::scalarI64(Nnz);
    Buffer X(DataType::Float32, {C.Cols, C.Feats});
    for (int64_t I = 0; I < X.numel(); ++I)
      X.setF(I, std::sin(0.17 * double(I)));
    Buffer Y(DataType::Float32, {C.Rows, C.Feats});
    std::map<std::string, Buffer *> Args{
        {"m", &M},   {"nnz", &NnzB}, {"indptr", &A.Indptr},
        {"indices", &A.Indices}, {"val", &A.Val}, {"x", &X}, {"y", &Y}};
    auto R = Ex.submit(F, Args);
    ASSERT_TRUE(R.ok()) << R.message();
    serve::Response Resp = R->get();
    ASSERT_TRUE(Resp.S.ok()) << Resp.S.message();
    if (Specialized)
      *Specialized = Resp.Specialized;
    std::vector<float> Want(C.Rows * C.Feats);
    SpMMConfig CN = C;
    spmmNaive(CN, A, X.as<float>(), Want.data());
    EXPECT_LT(maxDiff(Y, Want), 1e-5);
  };

  // Two hits at nnz=150 nominate the ~256 bucket; drain lands the one
  // specialized compile (m folded, nnz residual-symbolic).
  RunOne(150, nullptr);
  RunOne(150, nullptr);
  Ex.drain();
  // nnz=200 is a DIFFERENT exact sparsity in the SAME bucket: it must be
  // served by the bucket's specialized kernel, correctly.
  bool Spec = false;
  RunOne(200, &Spec);
  EXPECT_TRUE(Spec);
  EXPECT_GE(Ex.stats().SpecServed, 1u);
  EXPECT_EQ(Ex.stats().SpecCompilesStarted, 1u);
  Ex.shutdown();
}
