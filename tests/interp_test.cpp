//===- tests/interp_test.cpp - Buffer & interpreter edge cases -------------===//

#include <gtest/gtest.h>

#include "frontend/libop.h"
#include "interp/interp.h"
#include "ir/printer.h"

using namespace ft;

namespace {

Expr ic(int64_t V) { return makeIntConst(V); }

TEST(BufferTest, TypedAccessAndFlatten) {
  Buffer B(DataType::Float32, {2, 3});
  EXPECT_EQ(B.numel(), 6);
  EXPECT_EQ(B.sizeBytes(), 24u);
  B.setF(5, 2.5);
  EXPECT_FLOAT_EQ(B.getF(5), 2.5f);
  EXPECT_EQ(B.flatten({1, 2}), 5);
  EXPECT_EQ(B.flatten({0, 0}), 0);

  Buffer I(DataType::Int64, {4});
  I.setI(2, -7);
  EXPECT_EQ(I.getI(2), -7);
  EXPECT_DOUBLE_EQ(I.getF(2), -7.0);

  Buffer Bo(DataType::Bool, {2});
  Bo.setI(0, 3);
  EXPECT_EQ(Bo.getI(0), 1); // Normalized to 0/1.

  Buffer S = Buffer::scalarI64(42);
  EXPECT_EQ(S.numel(), 1);
  EXPECT_EQ(S.getI(0), 42);
}

TEST(BufferTest, OutOfBoundsAborts) {
  Buffer B(DataType::Float32, {2, 2});
  EXPECT_DEATH(B.flatten({2, 0}), "out of bounds");
  EXPECT_DEATH(B.getF(4), "out of bounds");
}

TEST(InterpTest2, ScalarParamDrivenShapes) {
  // Dynamic shapes: extents come from a scalar parameter.
  FunctionBuilder B("dyn");
  Expr N = B.scalarInput("n");
  View X = B.input("x", {N});
  View Y = B.output("y", {N});
  B.loop("i", makeIntConst(0), N,
         [&](Expr I) { Y[I].assign(X[I].load() + makeFloatConst(1.0)); });
  Func F = B.build();
  for (int64_t NV : {1, 5, 9}) {
    Buffer BN = Buffer::scalarI64(NV);
    Buffer BX(DataType::Float32, {NV}), BY(DataType::Float32, {NV});
    for (int64_t I = 0; I < NV; ++I)
      BX.setF(I, double(I));
    interpret(F, {{"n", &BN}, {"x", &BX}, {"y", &BY}});
    for (int64_t I = 0; I < NV; ++I)
      EXPECT_FLOAT_EQ(BY.as<float>()[I], float(I + 1));
  }
}

TEST(InterpTest2, LocalShadowingAcrossIterations) {
  // A local defined inside a loop is re-created per iteration: values must
  // not leak between iterations.
  FunctionBuilder B("shadow");
  View X = B.input("x", {ic(4)});
  View Y = B.output("y", {ic(4)});
  B.loop("i", 0, 4, [&](Expr I) {
    View T = B.local("t", {});
    B.ifThen(I >= 2, [&] { T.assign(X[I].load()); });
    B.ifThen(I < 2, [&] { T.assign(makeFloatConst(-1.0)); });
    Y[I].assign(T.load());
  });
  Func F = B.build();
  Buffer BX = Buffer::fromF32({4}, {10, 20, 30, 40});
  Buffer BY(DataType::Float32, {4});
  interpret(F, {{"x", &BX}, {"y", &BY}});
  EXPECT_FLOAT_EQ(BY.as<float>()[0], -1);
  EXPECT_FLOAT_EQ(BY.as<float>()[2], 30);
}

TEST(InterpTest2, ReduceToSemantics) {
  FunctionBuilder B("red");
  View Y = B.output("y", {ic(4)});
  B.loop("i", 0, 4, [&](Expr I) { Y[I].assign(makeFloatConst(10.0)); });
  B.loop("i", 0, 4, [&](Expr I) {
    Y[I].reduce(ReduceOpKind::Min, makeCast(DataType::Float32, I * 5));
  });
  Func F = B.build();
  Buffer BY(DataType::Float32, {4});
  interpret(F, {{"y", &BY}});
  EXPECT_FLOAT_EQ(BY.as<float>()[0], 0);  // min(10, 0)
  EXPECT_FLOAT_EQ(BY.as<float>()[1], 5);  // min(10, 5)
  EXPECT_FLOAT_EQ(BY.as<float>()[2], 10); // min(10, 10)
  EXPECT_FLOAT_EQ(BY.as<float>()[3], 10); // min(10, 15)
}

TEST(InterpTest2, IntegerOpsUsePythonSemantics) {
  FunctionBuilder B("intops");
  View Y = B.output("y", {ic(4)}, DataType::Int64);
  Expr M7 = makeIntConst(-7);
  Y[0].assign(makeFloorDiv(M7, makeIntConst(2)));
  Y[1].assign(makeMod(M7, makeIntConst(2)));
  Y[2].assign(makeMin(M7, makeIntConst(3)));
  Y[3].assign(makeMax(M7, makeIntConst(3)));
  Func F = B.build();
  Buffer BY(DataType::Int64, {4});
  interpret(F, {{"y", &BY}});
  EXPECT_EQ(BY.as<int64_t>()[0], -4);
  EXPECT_EQ(BY.as<int64_t>()[1], 1);
  EXPECT_EQ(BY.as<int64_t>()[2], -7);
  EXPECT_EQ(BY.as<int64_t>()[3], 3);
}

TEST(PrinterTest, OptionsShowIdsAndLabels) {
  Stmt S = makeStore("a", {makeVar("i")}, makeIntConst(1));
  Stmt L = makeFor("i", makeIntConst(0), makeIntConst(4), ForProperty{}, S);
  L->Label = "outer";
  PrintOptions Opts;
  Opts.ShowIds = true;
  Opts.ShowLabels = true;
  std::string P = toString(L, Opts);
  EXPECT_NE(P.find("# id " + std::to_string(L->Id)), std::string::npos);
  EXPECT_NE(P.find("# outer"), std::string::npos);
}

TEST(PrinterTest, ParallelAndAtomicAnnotations) {
  Stmt R = makeReduceTo("y", {}, ReduceOpKind::Add, makeVar("i"));
  cast<ReduceToNode>(R)->Atomic = true;
  ForProperty P;
  P.Parallel = true;
  Stmt L = makeFor("i", makeIntConst(0), makeIntConst(4), P, R);
  std::string Out = toString(L);
  EXPECT_NE(Out.find("# parallel"), std::string::npos);
  EXPECT_NE(Out.find("# atomic"), std::string::npos);
}

} // namespace
