//===- tests/kernel_cache_test.cpp - Two-tier kernel cache ----------------===//
//
// The content-addressed kernel cache (codegen/kernel_cache.h) end to end,
// against a private temporary cache directory:
//   - warm hits (memory and disk tier) produce bit-identical outputs;
//   - OptFlags / Profile changes miss (profiled and plain kernels can never
//     share an entry);
//   - a corrupted on-disk entry is evicted and recompiled, not crashed on;
//   - alpha-renamed Funcs share a fingerprint, different programs don't;
//   - the memory tier is LRU-bounded by FT_CACHE_MEM_ENTRIES;
//   - FT_CACHE=0 disables everything.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <gtest/gtest.h>
#include <unistd.h>

#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "frontend/builder.h"
#include "ir/compare.h"

using namespace ft;

namespace {

/// An elementwise kernel whose constant \p Scale makes distinct programs.
Func makeAxpy(double Scale, const std::string &Prefix = "") {
  FunctionBuilder B(Prefix + "axpy");
  View X = B.input(Prefix + "x", {makeIntConst(256)});
  View Y = B.output(Prefix + "y", {makeIntConst(256)});
  B.loop(Prefix + "i", 0, 256, [&](Expr I) {
    Y[I].assign(X[I].load() * makeFloatConst(Scale) + makeFloatConst(1.0));
  });
  return B.build();
}

void seed(Buffer &B) {
  for (int64_t I = 0; I < B.numel(); ++I)
    B.setF(I, std::sin(0.37 * double(I)));
}

std::vector<float> runOnce(const Kernel &K, const Func &F) {
  Buffer X(DataType::Float32, {256}), Y(DataType::Float32, {256});
  seed(X);
  std::map<std::string, Buffer *> Args = {{F.Params[0], &X},
                                          {F.Params[1], &Y}};
  Status S = K.run(Args);
  EXPECT_TRUE(S.ok()) << S.message();
  return std::vector<float>(Y.as<float>(), Y.as<float>() + Y.numel());
}

/// Each test gets a fresh private cache directory and a clean memory tier.
class KernelCacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Tmpl[] = "/tmp/ftcache.XXXXXX";
    ASSERT_NE(::mkdtemp(Tmpl), nullptr);
    Dir = Tmpl;
    ::setenv("FT_CACHE_DIR", Dir.c_str(), 1);
    ::setenv("FT_CACHE", "1", 1);
    ::unsetenv("FT_CACHE_MEM_ENTRIES");
    kernel_cache::memReset();
  }
  void TearDown() override {
    ::unsetenv("FT_CACHE_DIR");
    ::unsetenv("FT_CACHE");
    ::unsetenv("FT_CACHE_MEM_ENTRIES");
    kernel_cache::memReset();
    std::system(("rm -rf '" + Dir + "'").c_str());
  }
  std::string Dir;
};

} // namespace

TEST_F(KernelCacheTest, WarmHitsAreBitIdentical) {
  Func F = makeAxpy(3.0);

  auto Cold = Kernel::compile(F, "-O2");
  ASSERT_TRUE(Cold.ok()) << Cold.message();
  EXPECT_EQ(Cold->cacheTier(), KernelCacheTier::Compiled);
  std::vector<float> Want = runOnce(*Cold, F);

  // Second compile in the same process: memory tier.
  auto Mem = Kernel::compile(F, "-O2");
  ASSERT_TRUE(Mem.ok()) << Mem.message();
  EXPECT_EQ(Mem->cacheTier(), KernelCacheTier::Memory);
  std::vector<float> GotMem = runOnce(*Mem, F);
  ASSERT_EQ(Want.size(), GotMem.size());
  EXPECT_EQ(0, std::memcmp(Want.data(), GotMem.data(),
                           Want.size() * sizeof(float)));

  // Dropping the memory tier forces the on-disk object.
  kernel_cache::memReset();
  auto Disk = Kernel::compile(F, "-O2");
  ASSERT_TRUE(Disk.ok()) << Disk.message();
  EXPECT_EQ(Disk->cacheTier(), KernelCacheTier::Disk);
  std::vector<float> GotDisk = runOnce(*Disk, F);
  EXPECT_EQ(0, std::memcmp(Want.data(), GotDisk.data(),
                           Want.size() * sizeof(float)));
  // The stored generated source keeps Kernel::source() working on hits.
  EXPECT_EQ(Cold->source(), Disk->source());
  // Disk hits must be much cheaper than compiles; both are recorded.
  EXPECT_GT(Cold->compileSeconds(), Disk->compileSeconds());
}

TEST_F(KernelCacheTest, KeyChangesWithFlagsProfileAndProgram) {
  Func F = makeAxpy(3.0);
  CodegenOptions Plain, Prof;
  Prof.Profile = true;

  auto K0 = kernel_cache::cacheKey(F, Plain, "-O2");
  EXPECT_NE(K0.Full, kernel_cache::cacheKey(F, Plain, "-O3").Full);
  EXPECT_NE(K0.Full, kernel_cache::cacheKey(F, Prof, "-O2").Full);
  EXPECT_NE(K0.Full, kernel_cache::cacheKey(makeAxpy(4.0), Plain, "-O2").Full);

  // Fingerprints agree for alpha-renamed twins; the profiled/plain split
  // and the flags live in the Full key only.
  EXPECT_EQ(K0.Fingerprint, kernel_cache::cacheKey(F, Prof, "-O3").Fingerprint);
}

TEST_F(KernelCacheTest, ProfiledAndPlainNeverShareAnEntry) {
  Func F = makeAxpy(2.0);
  auto Plain = Kernel::compile(F, "-O2");
  ASSERT_TRUE(Plain.ok()) << Plain.message();
  ASSERT_FALSE(Plain->profiled());

  // Same program compiled for profiling right after a plain compile: must
  // not reuse the plain entry in either tier.
  CodegenOptions Prof;
  Prof.Profile = true;
  auto P1 = Kernel::compile(F, Prof, "-O2");
  ASSERT_TRUE(P1.ok()) << P1.message();
  EXPECT_TRUE(P1->profiled());
  EXPECT_EQ(P1->cacheTier(), KernelCacheTier::Compiled);

  // A second profiled compile may reuse the stored profiled object (disk
  // tier) but never the in-process handle (profile counters would merge).
  auto P2 = Kernel::compile(F, Prof, "-O2");
  ASSERT_TRUE(P2.ok()) << P2.message();
  EXPECT_TRUE(P2->profiled());
  EXPECT_NE(P2->cacheTier(), KernelCacheTier::Memory);
}

TEST_F(KernelCacheTest, CorruptDiskEntryIsEvictedAndRecompiled) {
  Func F = makeAxpy(5.0);
  auto Cold = Kernel::compile(F, "-O2");
  ASSERT_TRUE(Cold.ok()) << Cold.message();
  std::vector<float> Want = runOnce(*Cold, F);

  // Truncate/garbage the stored object, then force the disk path.
  kernel_cache::Key K = kernel_cache::cacheKey(F, CodegenOptions{}, "-O2");
  std::string So = Dir + "/" + K.hex() + ".so";
  {
    std::ofstream Out(So, std::ios::binary | std::ios::trunc);
    Out << "this is not an ELF object";
  }
  kernel_cache::memReset();

  auto Again = Kernel::compile(F, "-O2");
  ASSERT_TRUE(Again.ok()) << Again.message();
  EXPECT_EQ(Again->cacheTier(), KernelCacheTier::Compiled); // fell back
  std::vector<float> Got = runOnce(*Again, F);
  EXPECT_EQ(0,
            std::memcmp(Want.data(), Got.data(), Want.size() * sizeof(float)));

  // The republished entry is healthy again.
  kernel_cache::memReset();
  auto Healed = Kernel::compile(F, "-O2");
  ASSERT_TRUE(Healed.ok()) << Healed.message();
  EXPECT_EQ(Healed->cacheTier(), KernelCacheTier::Disk);
}

TEST_F(KernelCacheTest, AlphaRenamedFuncsHitTheSameFingerprint) {
  Func A = makeAxpy(3.0);
  Func B = makeAxpy(3.0, "ren_");
  EXPECT_EQ(fingerprint(A), fingerprint(B));
  EXPECT_NE(fingerprint(A), fingerprint(makeAxpy(3.5)));

  // The Full key still differs (symbol and parameter names are part of the
  // compiled artifact), so a rename compiles fresh — correctness over reuse.
  CodegenOptions Opts;
  auto KA = kernel_cache::cacheKey(A, Opts, "-O2");
  auto KB = kernel_cache::cacheKey(B, Opts, "-O2");
  EXPECT_EQ(KA.Fingerprint, KB.Fingerprint);
  EXPECT_NE(KA.Full, KB.Full);
}

TEST_F(KernelCacheTest, MemoryTierIsLruBounded) {
  ::setenv("FT_CACHE_MEM_ENTRIES", "2", 1);
  for (double Scale : {1.0, 2.0, 3.0, 4.0}) {
    auto K = Kernel::compile(makeAxpy(Scale), "-O1");
    ASSERT_TRUE(K.ok()) << K.message();
    EXPECT_LE(kernel_cache::memSize(), 2u);
  }
  EXPECT_EQ(kernel_cache::memSize(), 2u);

  // The two most recent entries are resident; the oldest was evicted to
  // disk only.
  auto Recent = Kernel::compile(makeAxpy(4.0), "-O1");
  ASSERT_TRUE(Recent.ok());
  EXPECT_EQ(Recent->cacheTier(), KernelCacheTier::Memory);
  auto Evicted = Kernel::compile(makeAxpy(1.0), "-O1");
  ASSERT_TRUE(Evicted.ok());
  EXPECT_EQ(Evicted->cacheTier(), KernelCacheTier::Disk);
}

TEST_F(KernelCacheTest, DisabledCacheAlwaysCompiles) {
  ::setenv("FT_CACHE", "0", 1);
  Func F = makeAxpy(7.0);
  auto K1 = Kernel::compile(F, "-O1");
  ASSERT_TRUE(K1.ok()) << K1.message();
  EXPECT_EQ(K1->cacheTier(), KernelCacheTier::Compiled);
  auto K2 = Kernel::compile(F, "-O1");
  ASSERT_TRUE(K2.ok()) << K2.message();
  EXPECT_EQ(K2->cacheTier(), KernelCacheTier::Compiled);
  EXPECT_EQ(kernel_cache::memSize(), 0u);
}
