//===- tests/workloads_grad_test.cpp - AD on the real workloads ------------===//
//
// Differentiates the actual workload builders (as the Figure 16(b)/18
// benchmarks do) and validates against finite differences.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <gtest/gtest.h>

#include "autodiff/grad.h"
#include "interp/interp.h"
#include "workloads/workloads.h"

using namespace ft;
using namespace ft::workloads;

namespace {

/// Runs fwd+bwd of \p G with the given bound input data (non-float params
/// included), seeds = ones, and finite-difference checks d(sum of outputs)
/// w.r.t. a few probe elements of \p WrtName.
void checkWorkloadGrad(const Func &Original, const GradResult &G,
                       std::map<std::string, Buffer> &Data,
                       const std::vector<std::string> &OutputNames,
                       const std::string &WrtName,
                       const std::vector<int64_t> &Probes, double Tol) {
  // Allocate tapes.
  for (const std::string &T : G.Tapes) {
    auto D = findVarDef(G.Forward.Body, T);
    ASSERT_NE(D, nullptr);
    std::vector<int64_t> Shape;
    for (const Expr &E : D->Info.Shape) {
      auto IC = dyn_cast<IntConstNode>(E);
      ASSERT_NE(IC, nullptr);
      Shape.push_back(IC->Val);
    }
    Data.emplace(T, Buffer(DataType::Float32, Shape));
  }
  std::map<std::string, Buffer *> FwdArgs;
  for (const std::string &P : G.Forward.Params)
    FwdArgs[P] = &Data.at(P);
  interpret(G.Forward, FwdArgs);

  for (const auto &[Y, SeedName] : G.SeedNames) {
    Data.emplace(SeedName,
                 Buffer(DataType::Float32, Data.at(Y).shape()));
    for (int64_t I = 0; I < Data.at(SeedName).numel(); ++I)
      Data.at(SeedName).setF(I, 1.0);
  }
  for (const auto &[X, GradName] : G.GradNames)
    Data.emplace(GradName, Buffer(DataType::Float32, Data.at(X).shape()));

  std::map<std::string, Buffer *> BwdArgs;
  for (const std::string &P : G.Backward.Params)
    BwdArgs[P] = &Data.at(P);
  interpret(G.Backward, BwdArgs);

  const Buffer &GradBuf = Data.at(G.GradNames.at(WrtName));
  const double Eps = 1e-3;
  for (int64_t Probe : Probes) {
    auto Loss = [&](double Delta) {
      std::map<std::string, Buffer> FD;
      for (const std::string &P : Original.Params)
        FD.emplace(P, Data.at(P));
      FD.at(WrtName).setF(Probe, FD.at(WrtName).getF(Probe) + Delta);
      std::map<std::string, Buffer *> Args;
      for (auto &[N, B] : FD)
        Args[N] = &B;
      interpret(Original, Args);
      double L = 0;
      for (const std::string &O : OutputNames)
        for (int64_t I = 0; I < FD.at(O).numel(); ++I)
          L += FD.at(O).getF(I);
      return L;
    };
    double Numeric = (Loss(Eps) - Loss(-Eps)) / (2 * Eps);
    EXPECT_NEAR(GradBuf.getF(Probe), Numeric, Tol)
        << WrtName << "[" << Probe << "]";
  }
}

TEST(WorkloadGradTest, SubdivNetGrad) {
  SubdivNetConfig C{24, 4};
  Func F = buildSubdivNet(C);
  for (TapeStrategy S : {TapeStrategy::Selective, TapeStrategy::All}) {
    auto G = grad(F, {"e"}, S);
    ASSERT_TRUE(G.ok()) << G.message();
    SubdivNetData D = makeSubdivNetData(C);
    std::map<std::string, Buffer> Data;
    Data.emplace("e", D.E);
    Data.emplace("adj", D.Adj);
    Data.emplace("y", Buffer(DataType::Float32, {C.NFaces, C.Feats}));
    checkWorkloadGrad(F, *G, Data, {"y"}, "e", {0, 5, 37, 95}, 5e-2);
  }
}

TEST(WorkloadGradTest, LongformerGradBothStrategies) {
  LongformerConfig C{10, 3, 2};
  Func F = buildLongformer(C);
  for (TapeStrategy S : {TapeStrategy::Selective, TapeStrategy::All}) {
    auto G = grad(F, {"Q", "K", "V"}, S);
    ASSERT_TRUE(G.ok()) << G.message();
    LongformerData D = makeLongformerData(C);
    std::map<std::string, Buffer> Data;
    Data.emplace("Q", D.Q);
    Data.emplace("K", D.K);
    Data.emplace("V", D.V);
    Data.emplace("y", Buffer(DataType::Float32, {C.SeqLen, C.Feats}));
    checkWorkloadGrad(F, *G, Data, {"y"}, "Q", {0, 7, 15}, 3e-2);
    checkWorkloadGrad(F, *G, Data, {"y"}, "V", {0, 11, 29}, 3e-2);
  }
}

TEST(WorkloadGradTest, LongformerSelectiveTapesFewerTensors) {
  LongformerConfig C{10, 3, 2};
  Func F = buildLongformer(C);
  auto GSel = grad(F, {"Q", "K", "V"}, TapeStrategy::Selective);
  auto GAll = grad(F, {"Q", "K", "V"}, TapeStrategy::All);
  ASSERT_TRUE(GSel.ok() && GAll.ok());
  // The selective policy recomputes attn / the exp values instead of
  // taping them (paper §5.2) — strictly fewer tapes than materialize-all.
  EXPECT_LT(GSel->Tapes.size(), GAll->Tapes.size());
}

TEST(WorkloadGradTest, SoftRasGrad) {
  SoftRasConfig C{6, 5, 5, 0.08f};
  Func F = buildSoftRas(C);
  for (TapeStrategy S : {TapeStrategy::Selective, TapeStrategy::All}) {
    auto G = grad(F, {"verts"}, S);
    ASSERT_TRUE(G.ok()) << G.message();
    SoftRasData D = makeSoftRasData(C);
    std::map<std::string, Buffer> Data;
    Data.emplace("verts", D.Verts);
    Data.emplace("px", D.Px);
    Data.emplace("py", D.Py);
    Data.emplace("img", Buffer(DataType::Float32, {C.numPixels()}));
    checkWorkloadGrad(F, *G, Data, {"img"}, "verts", {0, 3, 10, 25}, 5e-2);
  }
}

} // namespace
