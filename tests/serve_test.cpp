//===- tests/serve_test.cpp - Tiered kernel-serving runtime ---------------===//
//
// The serving executor (serve/serve.h) end to end:
//   - tier promotion: the first request of a fingerprint is answered by the
//     interpreter, and once the background compile lands requests are served
//     by the JIT'd kernel;
//   - in-flight compile dedup: N concurrent cold submissions of the same
//     program start exactly one compile;
//   - a warm kernel cache makes the very first request JIT-tier (no compile);
//   - queue-full backpressure: reject policy returns a typed error, block
//     policy completes everything;
//   - shutdown with pending work completes every accepted request;
//   - a failing background compile pins the fingerprint to the interpreter
//     (degraded, not broken) and is counted;
//   - micro-batched execution produces the same outputs as the reference
//     interpreter (differential check);
//   - a bad argument binding fails that one request, not the executor.
//
// All tests run against a fresh private kernel-cache directory so background
// compiles never hit artifacts from other tests or earlier runs.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <cstdlib>
#include <future>
#include <gtest/gtest.h>
#include <set>
#include <unistd.h>

#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "frontend/builder.h"
#include "interp/interp.h"
#include "serve/serve.h"
#include "serve/telemetry.h"
#include "support/metrics.h"

using namespace ft;
using namespace ft::serve;

namespace {

constexpr int64_t kN = 256;

/// An elementwise kernel whose constant \p Scale makes distinct programs.
Func makeAxpy(double Scale) {
  FunctionBuilder B("saxpy");
  View X = B.input("x", {makeIntConst(kN)});
  View Y = B.output("y", {makeIntConst(kN)});
  B.loop("i", 0, kN, [&](Expr I) {
    Y[I].assign(X[I].load() * makeFloatConst(Scale) + makeFloatConst(1.0));
  });
  return B.build();
}

/// A kernel the interpreter takes visibly long on (~260k statement visits
/// over kN x kN): used to keep a worker busy while the test piles up queued
/// requests. Parameter shapes match Slot's kN buffers.
Func makeSlow() {
  FunctionBuilder B("slowsum");
  View X = B.input("x", {makeIntConst(kN)});
  View Y = B.output("y", {makeIntConst(kN)});
  B.loop("i", 0, kN, [&](Expr I) {
    B.loop("j", 0, kN, [&](Expr J) { Y[I] += X[J].load(); });
  });
  return B.build();
}

void seed(Buffer &B, double Phase = 0.37) {
  for (int64_t I = 0; I < B.numel(); ++I)
    B.setF(I, std::sin(Phase * double(I)));
}

void zero(Buffer &B) {
  for (int64_t I = 0; I < B.numel(); ++I)
    B.setF(I, 0.0);
}

/// One request's argument set, kept alive until its future resolves.
struct Slot {
  Buffer X{DataType::Float32, {kN}};
  Buffer Y{DataType::Float32, {kN}};
  std::future<Response> Fut;

  std::map<std::string, Buffer *> args(const Func &F) {
    return {{F.Params[0], &X}, {F.Params[1], &Y}};
  }
};

/// Fresh private cache dir + clean memory tier per test, and no FT_SERVE_*
/// leakage between tests.
class ServeTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Tmpl[] = "/tmp/ftserve.XXXXXX";
    ASSERT_NE(::mkdtemp(Tmpl), nullptr);
    Dir = Tmpl;
    ::setenv("FT_CACHE_DIR", Dir.c_str(), 1);
    ::setenv("FT_CACHE", "1", 1);
    for (const char *V :
         {"FT_SERVE_THREADS", "FT_SERVE_QUEUE_CAP", "FT_SERVE_ON_FULL",
          "FT_SERVE_BATCH_WINDOW_US", "FT_SERVE_MAX_BATCH",
          "FT_SERVE_OPT_FLAGS", "FT_SERVE_RT_THREADS", "FT_TELEMETRY_DIR",
          "FT_TELEMETRY_INTERVAL_MS", "FT_TELEMETRY_KEEP", "FT_FLIGHT_CAP"})
      ::unsetenv(V);
    telemetry::setEnabled(false);
    telemetry::reset();
    kernel_cache::memReset();
  }
  void TearDown() override {
    ::unsetenv("FT_CACHE_DIR");
    ::unsetenv("FT_CACHE");
    telemetry::setEnabled(false);
    telemetry::reset();
    kernel_cache::memReset();
    std::system(("rm -rf '" + Dir + "'").c_str());
  }
  std::string Dir;
};

} // namespace

TEST_F(ServeTest, TierPromotionInterpThenJit) {
  Func F = makeAxpy(3.0);
  Executor Ex;

  // Cold: nothing compiled, nothing cached — the interpreter answers
  // immediately instead of making the request wait on the host compiler.
  Slot S0;
  seed(S0.X);
  auto R0 = Ex.submit(F, S0.args(F));
  ASSERT_TRUE(R0.ok()) << R0.message();
  S0.Fut = std::move(*R0);
  Response Resp0 = S0.Fut.get();
  ASSERT_TRUE(Resp0.S.ok()) << Resp0.S.message();
  EXPECT_EQ(Resp0.ServedBy, Tier::Interp);

  // drain() also waits for the background compile to land.
  Ex.drain();
  ServeStats Mid = Ex.stats();
  EXPECT_EQ(Mid.CompilesStarted, 1u);
  EXPECT_EQ(Mid.CompilesFailed, 0u);
  EXPECT_EQ(Mid.InterpServed, 1u);

  // Warm: the same program is now served by the compiled kernel, and the
  // two tiers agree on the numbers.
  Slot S1;
  seed(S1.X);
  auto R1 = Ex.submit(F, S1.args(F));
  ASSERT_TRUE(R1.ok()) << R1.message();
  Response Resp1 = R1->get();
  ASSERT_TRUE(Resp1.S.ok()) << Resp1.S.message();
  EXPECT_EQ(Resp1.ServedBy, Tier::Jit);
  for (int64_t It = 0; It < kN; ++It)
    EXPECT_FLOAT_EQ(S0.Y.as<float>()[It], S1.Y.as<float>()[It]);

  EXPECT_EQ(Ex.stats().JitServed, 1u);
  EXPECT_EQ(Ex.directorySize(), 1u);
}

TEST_F(ServeTest, ConcurrentColdMissesStartOneCompile) {
  Func F = makeAxpy(4.0);
  Config C;
  C.Threads = 4;
  C.MaxBatch = 1; // isolate the dedup mechanism from batching
  Executor Ex(C);

  constexpr int kReqs = 16;
  std::vector<Slot> Slots(kReqs);
  for (Slot &S : Slots) {
    seed(S.X);
    auto R = Ex.submit(F, S.args(F));
    ASSERT_TRUE(R.ok()) << R.message();
    S.Fut = std::move(*R);
  }
  for (Slot &S : Slots) {
    Response Resp = S.Fut.get();
    EXPECT_TRUE(Resp.S.ok()) << Resp.S.message();
  }
  Ex.drain();

  ServeStats St = Ex.stats();
  // The load-bearing assertion: 16 racing cold submissions, ONE compile.
  EXPECT_EQ(St.CompilesStarted, 1u);
  EXPECT_EQ(St.Submitted, static_cast<uint64_t>(kReqs));
  EXPECT_EQ(St.InterpServed + St.JitServed, static_cast<uint64_t>(kReqs));
  EXPECT_EQ(Ex.directorySize(), 1u);
}

TEST_F(ServeTest, WarmKernelCacheServesJitFromTheFirstRequest) {
  Func F = makeAxpy(5.0);
  // Populate the kernel cache out of band, with the executor's own options
  // (CodegenOptions{} + Config::OptFlags) so the keys line up.
  Config C;
  auto Pre = Kernel::compile(F, CodegenOptions{}, C.OptFlags);
  ASSERT_TRUE(Pre.ok()) << Pre.message();

  Executor Ex(C);
  Slot S;
  seed(S.X);
  auto R = Ex.submit(F, S.args(F));
  ASSERT_TRUE(R.ok()) << R.message();
  Response Resp = R->get();
  ASSERT_TRUE(Resp.S.ok()) << Resp.S.message();
  EXPECT_EQ(Resp.ServedBy, Tier::Jit);

  ServeStats St = Ex.stats();
  EXPECT_EQ(St.CacheHits, 1u);
  EXPECT_EQ(St.CompilesStarted, 0u); // the host compiler never ran here
  EXPECT_EQ(St.InterpServed, 0u);
}

TEST_F(ServeTest, QueueFullRejectsWithTypedError) {
  Func F = makeSlow();
  Config C;
  C.Threads = 1;
  C.QueueCap = 2;
  C.MaxBatch = 1;
  C.BlockOnFull = false;
  Executor Ex(C);

  // First request occupies the single worker for ~10^6 interpreted
  // statements; everything after lands in (and then overflows) the queue.
  std::vector<Slot> Slots(8);
  int Accepted = 0, Rejected = 0;
  std::string RejectMsg;
  for (Slot &S : Slots) {
    seed(S.X);
    zero(S.Y);
    auto R = Ex.submit(F, S.args(F));
    if (R.ok()) {
      S.Fut = std::move(*R);
      ++Accepted;
    } else {
      RejectMsg = R.message();
      ++Rejected;
    }
  }
  EXPECT_GE(Rejected, 1);
  EXPECT_NE(RejectMsg.find("queue full"), std::string::npos) << RejectMsg;
  // Every accepted request still completes.
  for (Slot &S : Slots)
    if (S.Fut.valid()) {
      Response Resp = S.Fut.get();
      EXPECT_TRUE(Resp.S.ok()) << Resp.S.message();
    }

  ServeStats St = Ex.stats();
  EXPECT_EQ(St.Rejected, static_cast<uint64_t>(Rejected));
  EXPECT_EQ(St.Submitted, static_cast<uint64_t>(Accepted));
}

TEST_F(ServeTest, BlockPolicyCompletesEverything) {
  Func F = makeSlow();
  Config C;
  C.Threads = 1;
  C.QueueCap = 1;
  C.MaxBatch = 1;
  C.BlockOnFull = true;
  Executor Ex(C);

  std::vector<Slot> Slots(6);
  for (Slot &S : Slots) {
    seed(S.X);
    zero(S.Y);
    auto R = Ex.submit(F, S.args(F)); // blocks instead of rejecting
    ASSERT_TRUE(R.ok()) << R.message();
    S.Fut = std::move(*R);
  }
  for (Slot &S : Slots) {
    Response Resp = S.Fut.get();
    EXPECT_TRUE(Resp.S.ok()) << Resp.S.message();
  }
  ServeStats St = Ex.stats();
  EXPECT_EQ(St.Rejected, 0u);
  EXPECT_EQ(St.Submitted, 6u);
}

TEST_F(ServeTest, ShutdownCompletesPendingThenRejects) {
  Func F = makeAxpy(6.0);
  Config C;
  C.Threads = 2;
  Executor Ex(C);

  constexpr int kReqs = 12;
  std::vector<Slot> Slots(kReqs);
  for (Slot &S : Slots) {
    seed(S.X);
    auto R = Ex.submit(F, S.args(F));
    ASSERT_TRUE(R.ok()) << R.message();
    S.Fut = std::move(*R);
  }

  // Shut down while requests are still queued/executing: all of them must
  // resolve (drain-on-shutdown), none may be dropped with a broken promise.
  Ex.shutdown();
  for (Slot &S : Slots) {
    ASSERT_EQ(S.Fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    Response Resp = S.Fut.get();
    EXPECT_TRUE(Resp.S.ok()) << Resp.S.message();
  }
  ServeStats St = Ex.stats();
  EXPECT_EQ(St.InterpServed + St.JitServed, static_cast<uint64_t>(kReqs));

  // The executor is now closed for business, with a typed error.
  Slot Late;
  seed(Late.X);
  auto R = Ex.submit(F, Late.args(F));
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("shut down"), std::string::npos) << R.message();

  Ex.shutdown(); // idempotent
}

TEST_F(ServeTest, CompileFailurePinsInterpreterFallback) {
  Func F = makeAxpy(7.0);
  Config C;
  C.OptFlags = "-O1 -fthis-flag-does-not-exist"; // host compiler will balk
  Executor Ex(C);

  Slot S0;
  seed(S0.X);
  auto R0 = Ex.submit(F, S0.args(F));
  ASSERT_TRUE(R0.ok()) << R0.message();
  Response Resp0 = R0->get();
  ASSERT_TRUE(Resp0.S.ok()) << Resp0.S.message();
  EXPECT_EQ(Resp0.ServedBy, Tier::Interp);

  Ex.drain(); // compile has failed by now

  // Degraded, not broken: requests keep being answered, by the
  // interpreter, forever — and the failure is visible in the counters.
  Slot S1;
  seed(S1.X);
  auto R1 = Ex.submit(F, S1.args(F));
  ASSERT_TRUE(R1.ok()) << R1.message();
  Response Resp1 = R1->get();
  ASSERT_TRUE(Resp1.S.ok()) << Resp1.S.message();
  EXPECT_EQ(Resp1.ServedBy, Tier::Interp);

  ServeStats St = Ex.stats();
  EXPECT_EQ(St.CompilesStarted, 1u);
  EXPECT_EQ(St.CompilesFailed, 1u);
  EXPECT_EQ(St.JitServed, 0u);
  EXPECT_EQ(St.InterpServed, 2u);
}

TEST_F(ServeTest, MicroBatchingMatchesReferenceOutputs) {
  Func F = makeAxpy(2.5);
  Config C;
  C.Threads = 1;            // one worker => arrivals pile up behind it
  C.BatchWindowUs = 20000;  // generous window: the 8 submits land inside it
  C.MaxBatch = 8;
  C.BlockOnFull = true;
  Executor Ex(C);

  constexpr int kReqs = 8;
  std::vector<Slot> Slots(kReqs);
  for (int R = 0; R < kReqs; ++R) {
    seed(Slots[R].X, 0.11 * double(R + 1)); // distinct inputs per request
    auto Sub = Ex.submit(F, Slots[R].args(F));
    ASSERT_TRUE(Sub.ok()) << Sub.message();
    Slots[R].Fut = std::move(*Sub);
  }

  uint64_t MaxBatch = 0;
  for (Slot &S : Slots) {
    Response Resp = S.Fut.get();
    ASSERT_TRUE(Resp.S.ok()) << Resp.S.message();
    MaxBatch = std::max(MaxBatch, static_cast<uint64_t>(Resp.BatchSize));
  }
  // At least some of the 8 same-fingerprint requests were grouped.
  EXPECT_GE(Ex.stats().MaxBatch, 2u);
  EXPECT_EQ(Ex.stats().MaxBatch, MaxBatch);
  EXPECT_LT(Ex.stats().Batches, static_cast<uint64_t>(kReqs));

  // Differential: batched serving = unbatched reference interpreter.
  for (Slot &S : Slots) {
    Buffer RefY(DataType::Float32, {kN});
    Status RS = interpretChecked(F, {{F.Params[0], &S.X}, {F.Params[1], &RefY}});
    ASSERT_TRUE(RS.ok()) << RS.message();
    for (int64_t It = 0; It < kN; ++It)
      EXPECT_FLOAT_EQ(RefY.as<float>()[It], S.Y.as<float>()[It]);
  }
}

TEST_F(ServeTest, BadArgumentBindingFailsOnlyThatRequest) {
  Func F = makeAxpy(8.0);
  Executor Ex;

  // Missing the output buffer: typed per-request error in the Response.
  Buffer X(DataType::Float32, {kN});
  seed(X);
  std::map<std::string, Buffer *> Bad = {{F.Params[0], &X}};
  auto R0 = Ex.submit(F, Bad);
  ASSERT_TRUE(R0.ok()) << R0.message(); // accepted; fails at execution
  Response Resp0 = R0->get();
  EXPECT_FALSE(Resp0.S.ok());
  EXPECT_NE(Resp0.S.message().find(F.Params[1]), std::string::npos)
      << Resp0.S.message();

  // Wrong shape: also a typed error, not a process abort — the serving
  // runtime validates untrusted requests before handing them to a backend.
  Buffer Small(DataType::Float32, {8}), Out(DataType::Float32, {kN});
  std::map<std::string, Buffer *> Mis = {{F.Params[0], &Small},
                                         {F.Params[1], &Out}};
  auto R1 = Ex.submit(F, Mis);
  ASSERT_TRUE(R1.ok()) << R1.message();
  Response Resp1 = R1->get();
  EXPECT_FALSE(Resp1.S.ok());
  EXPECT_NE(Resp1.S.message().find("shape mismatch"), std::string::npos)
      << Resp1.S.message();

  // The executor is unharmed: a well-formed request still succeeds.
  Slot S;
  seed(S.X);
  auto R2 = Ex.submit(F, S.args(F));
  ASSERT_TRUE(R2.ok()) << R2.message();
  Response Resp2 = R2->get();
  EXPECT_TRUE(Resp2.S.ok()) << Resp2.S.message();
  EXPECT_EQ(Ex.stats().RunErrors, 2u);
}

//===----------------------------------------------------------------------===//
// Telemetry under load (satellite of the telemetry-plane PR): queue-wait
// accounting is monotone with offered load, and rejected requests never
// pollute the latency histograms.
//===----------------------------------------------------------------------===//

namespace {

/// Submits \p Reqs slow-kernel requests against a 1-worker block-on-full
/// executor and returns the queue-wait histogram's mean over them,
/// normalized by the same run's mean interpreter service time. Higher
/// offered load against the same service rate must mean more service
/// times spent waiting; the normalization cancels machine-load drift
/// between the sequentially measured load levels.
double queueWaitMeanUnderLoad(const Func &F, int Reqs) {
  metrics::resetPrefix("serve/");
  telemetry::reset();

  Config C;
  C.Threads = 1;
  C.QueueCap = 4; // small: saturates quickly, block policy absorbs the rest
  C.BlockOnFull = true;
  C.MaxBatch = 1; // no batching: every request waits its full turn
  // Pin the background compile to fail so every request stays on the
  // interpreter tier: on a slow machine (ASan) the bigger load levels
  // would otherwise outlive the JIT compile, flip tiers mid-stream, and
  // wreck the fixed-service-rate queueing model this test asserts.
  C.OptFlags = "-O1 -fthis-flag-does-not-exist";
  Executor Ex(C);

  std::vector<Slot> Slots(static_cast<size_t>(Reqs));
  for (Slot &S : Slots) {
    seed(S.X);
    auto R = Ex.submit(F, S.args(F));
    // Block policy: nothing is rejected, submit may wait for space.
    EXPECT_TRUE(R.ok()) << R.message();
    if (R.ok())
      S.Fut = std::move(*R);
  }
  for (Slot &S : Slots)
    if (S.Fut.valid()) {
      Response Resp = S.Fut.get();
      EXPECT_TRUE(Resp.S.ok()) << Resp.S.message();
    }
  Ex.shutdown();

  metrics::HistogramSnapshot H =
      metrics::histogram("serve/queue_wait_ns").snapshot();
  EXPECT_EQ(H.Count, static_cast<uint64_t>(Reqs));
  metrics::HistogramSnapshot Run =
      metrics::histogram("serve/run_ns_interp").snapshot();
  EXPECT_GT(Run.Count, 0u);
  double RunMean = Run.mean();
  return RunMean > 0 ? H.mean() / RunMean : 0.0;
}

} // namespace

TEST_F(ServeTest, QueueWaitHistogramMonotoneWithOfferedLoad) {
  telemetry::setEnabled(true);
  // Interpreter-only service (no cache, compiles pinned slow): use the
  // slow kernel so each request holds the single worker for a visible
  // time and later submissions genuinely queue.
  ::setenv("FT_CACHE", "0", 1);
  Func F = makeSlow();

  double MeanLow = queueWaitMeanUnderLoad(F, 4);
  double MeanMid = queueWaitMeanUnderLoad(F, 12);
  double MeanHigh = queueWaitMeanUnderLoad(F, 24);

  // Strictly more offered load against one fixed-rate worker => strictly
  // more service times spent queued (each doubling adds whole service
  // times, far beyond scheduler jitter once normalized by the measured
  // service rate of the same run).
  EXPECT_GT(MeanMid, MeanLow);
  EXPECT_GT(MeanHigh, MeanMid);
}

TEST_F(ServeTest, RejectedRequestsNeverPolluteLatencyHistograms) {
  telemetry::setEnabled(true);
  metrics::resetPrefix("serve/");
  telemetry::reset();

  ::setenv("FT_CACHE", "0", 1);
  Func F = makeSlow();

  Config C;
  C.Threads = 1;
  C.QueueCap = 2;
  C.BlockOnFull = false; // reject policy: overload bounces at submit
  C.MaxBatch = 1;
  Executor Ex(C);

  const int kOffered = 40;
  std::vector<Slot> Slots(kOffered);
  uint64_t Accepted = 0, Rejected = 0;
  for (Slot &S : Slots) {
    seed(S.X);
    auto R = Ex.submit(F, S.args(F));
    if (R.ok()) {
      S.Fut = std::move(*R);
      ++Accepted;
    } else {
      ++Rejected;
    }
  }
  for (Slot &S : Slots)
    if (S.Fut.valid())
      (void)S.Fut.get();
  Ex.shutdown();

  ASSERT_GT(Rejected, 0u) << "overload did not saturate the queue";

  // Latency histograms hold exactly the accepted requests; the rejects
  // show up only in the flight recorder's outcome tallies.
  metrics::HistogramSnapshot QH =
      metrics::histogram("serve/queue_wait_ns").snapshot();
  metrics::HistogramSnapshot RH =
      metrics::histogram("serve/run_ns_interp").snapshot();
  EXPECT_EQ(QH.Count, Accepted);
  EXPECT_EQ(RH.Count, Accepted);

  FlightSummary FS = flightRecorder().summary();
  EXPECT_EQ(FS.RejectedFull, Rejected);
  EXPECT_EQ(FS.Ok, Accepted);
  EXPECT_EQ(FS.Recorded, Accepted + Rejected);
}

//===----------------------------------------------------------------------===//
// Request context: identity, tenant, deadline (DESIGN.md §15)
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, ResponsesCarryDistinctRequestIds) {
  Func F = makeAxpy(11.0);
  Executor Ex;
  std::vector<Slot> Slots(4);
  std::set<uint64_t> Ids;
  for (Slot &S : Slots) {
    seed(S.X);
    auto R = Ex.submit(F, S.args(F));
    ASSERT_TRUE(R.ok()) << R.message();
    S.Fut = std::move(*R);
  }
  for (Slot &S : Slots) {
    Response Resp = S.Fut.get();
    ASSERT_TRUE(Resp.S.ok()) << Resp.S.message();
    EXPECT_NE(Resp.ReqId, 0u) << "0 is the no-request sentinel";
    Ids.insert(Resp.ReqId);
  }
  EXPECT_EQ(Ids.size(), Slots.size()) << "request ids must be unique";
  Ex.shutdown();
}

TEST_F(ServeTest, DeadlineVerdictStampsResponseAndTelemetry) {
  telemetry::setEnabled(true);
  Func F = makeAxpy(12.0);
  Executor Ex;

  // A 1 ns budget no request can meet, then a 30 s budget none can miss.
  Slot Tight;
  seed(Tight.X);
  SubmitOptions TightOpts;
  TightOpts.Tenant = "acme";
  TightOpts.DeadlineNs = 1;
  auto R0 = Ex.submit(F, Tight.args(F), TightOpts);
  ASSERT_TRUE(R0.ok()) << R0.message();
  Response Missed = R0->get();
  ASSERT_TRUE(Missed.S.ok()) << Missed.S.message();
  EXPECT_TRUE(Missed.DeadlineMissed)
      << "a 1 ns deadline is an SLO miss, not an execution error";

  Slot Loose;
  seed(Loose.X);
  SubmitOptions LooseOpts;
  LooseOpts.Tenant = "acme";
  LooseOpts.DeadlineNs = 30'000'000'000ull;
  auto R1 = Ex.submit(F, Loose.args(F), LooseOpts);
  ASSERT_TRUE(R1.ok()) << R1.message();
  Response Met = R1->get();
  ASSERT_TRUE(Met.S.ok()) << Met.S.message();
  EXPECT_FALSE(Met.DeadlineMissed);
  Ex.drain();

  std::vector<telemetry::TenantSlo> Slo = telemetry::tenantSlo();
  ASSERT_EQ(Slo.size(), 1u);
  EXPECT_EQ(Slo[0].Tenant, "acme");
  EXPECT_EQ(Slo[0].Met, 1u);
  EXPECT_EQ(Slo[0].Missed, 1u);

  // The flight recorder flags the missed request with its identity and
  // the queue-vs-run breakdown.
  bool FoundMissed = false;
  for (const FlightEvent &E : flightRecorder().peek()) {
    if (!E.DeadlineMissed)
      continue;
    FoundMissed = true;
    EXPECT_EQ(E.ReqId, Missed.ReqId);
    EXPECT_EQ(E.Tenant, "acme");
    EXPECT_EQ(E.DeadlineNs, 1u);
    EXPECT_EQ(E.TotalNs, E.QueueNs + E.RunNs);
  }
  EXPECT_TRUE(FoundMissed);
  Ex.shutdown();
}

TEST_F(ServeTest, RequestsWithoutOptionsGetConfigDefaults) {
  telemetry::setEnabled(true);
  Func F = makeAxpy(13.0);
  Config C;
  C.DefaultTenant = "fleet-a";
  C.DefaultDeadlineNs = 30'000'000'000ull;
  Executor Ex(C);
  Slot S;
  seed(S.X);
  auto R = Ex.submit(F, S.args(F));
  ASSERT_TRUE(R.ok()) << R.message();
  Response Resp = R->get();
  ASSERT_TRUE(Resp.S.ok()) << Resp.S.message();
  EXPECT_FALSE(Resp.DeadlineMissed);
  Ex.drain();

  std::vector<telemetry::TenantSlo> Slo = telemetry::tenantSlo();
  ASSERT_EQ(Slo.size(), 1u);
  EXPECT_EQ(Slo[0].Tenant, "fleet-a");
  EXPECT_EQ(Slo[0].Met, 1u);

  // The executor records the argument-shape signature for the request.
  std::vector<telemetry::ShapeStat> Shapes = telemetry::hotShapes();
  ASSERT_EQ(Shapes.size(), 1u);
  EXPECT_EQ(Shapes[0].ShapeKey, "x:f32[256] y:f32[256]");
  EXPECT_EQ(Shapes[0].Requests, 1u);
  Ex.shutdown();
}

TEST_F(ServeTest, RejectedRequestsCarryTheirRequestIdentity) {
  telemetry::setEnabled(true);
  Func Slow = makeSlow();
  Config C;
  C.Threads = 1;
  C.QueueCap = 1;
  C.BlockOnFull = false;
  C.MaxBatch = 1;
  Executor Ex(C);

  std::vector<Slot> Slots(12);
  size_t Rejected = 0;
  for (Slot &S : Slots) {
    seed(S.X);
    auto R = Ex.submit(Slow, S.args(Slow), SubmitOptions{"acme", 0});
    if (R.ok())
      S.Fut = std::move(*R);
    else
      ++Rejected;
  }
  for (Slot &S : Slots)
    if (S.Fut.valid())
      (void)S.Fut.get();
  Ex.shutdown();
  ASSERT_GT(Rejected, 0u) << "overload did not saturate the queue";

  size_t FlaggedRejects = 0;
  for (const FlightEvent &E : flightRecorder().peek()) {
    if (E.Out != Outcome::RejectedFull)
      continue;
    ++FlaggedRejects;
    EXPECT_NE(E.ReqId, 0u) << "bounced request lost its identity";
    EXPECT_EQ(E.Tenant, "acme");
  }
  EXPECT_EQ(FlaggedRejects, Rejected);
}
