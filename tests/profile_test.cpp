//===- tests/profile_test.cpp - Kernel-level profiler tests -----------------===//
//
// The profiler's contract (DESIGN.md §10) has three load-bearing claims:
//
//  1. Exactness: per-statement Calls/Iters from an instrumented kernel are
//     *exact*, not sampled — so they must equal the interpreter's per-stmt
//     counts on the same (scheduled) program, statement by statement. We
//     check this on fuzzed programs, including under FT_NUM_THREADS=4
//     where counters merge across the pool's per-thread slots.
//  2. Zero cost when off: profile-off emission is byte-identical to the
//     default emission — no instrumentation residue whatsoever.
//  3. Reports resolve: every runtime sample maps back through the source
//     map to a named loop with nesting path and schedule provenance, and
//     the flamegraph / JSON renderers produce well-formed output.
//
// Plus the memory-accounting half: heap-backed caches report peak/current
// bytes through the versioned rt_stats ABI.
//
//===----------------------------------------------------------------------===//

#include <cstdlib>
#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "codegen/jit.h"
#include "codegen/profile.h"
#include "frontend/builder.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "schedule/schedule.h"
#include "support/trace.h"

using namespace ft;

namespace {

/// Deterministic PRNG (same recipe as fuzz_test.cpp).
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 2654435761u + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() % uint64_t(Hi - Lo));
  }
  bool coin() { return next() & 1; }
};

struct RandomProgram {
  Func F;
  std::map<std::string, std::vector<int64_t>> Shapes;
};

/// A random two-pass program over 2-D/1-D tensors; mirrors the fuzz-test
/// generator but stays branch-light so every seed JIT-compiles quickly.
RandomProgram makeRandomProgram(uint64_t Seed) {
  Rng R(Seed);
  const int64_t N = R.range(6, 14);
  const int64_t M = R.range(3, 9);
  FunctionBuilder B("prof" + std::to_string(Seed));
  View A = B.input("a", {makeIntConst(N), makeIntConst(M)});
  View Y = B.output("y", {makeIntConst(N), makeIntConst(M)});
  View Z = B.output("z", {makeIntConst(N)});

  B.loop(
      "i", 0, N,
      [&](Expr I) {
        B.loop("j", 0, M, [&](Expr J) {
          Expr V = A[I][J].load() * makeFloatConst(0.5 + (Seed % 3));
          if (R.coin())
            Y[I][J].assign(V);
          else
            Y[I][J].assign(V + makeFloatConst(1.0));
        });
      },
      "L1");

  B.loop(
      "i", 0, N,
      [&](Expr I) {
        View T = B.local("t", {});
        T.assign(0.0);
        B.loop("j", 0, M, [&](Expr J) { T += Y[I][J].load(); });
        Z[I].assign(T.load());
      },
      "L2");

  RandomProgram P;
  P.F = B.build();
  P.Shapes = {{"a", {N, M}}, {"y", {N, M}}, {"z", {N}}};
  return P;
}

std::vector<int64_t> allLoops(const Stmt &S) {
  std::vector<int64_t> Out;
  std::function<void(const Stmt &)> Walk = [&](const Stmt &St) {
    if (auto L = dyn_cast<ForNode>(St)) {
      Out.push_back(L->Id);
      return Walk(L->Body);
    }
    if (auto Seq = dyn_cast<StmtSeqNode>(St)) {
      for (const Stmt &Sub : Seq->Stmts)
        Walk(Sub);
      return;
    }
    if (auto D = dyn_cast<VarDefNode>(St))
      return Walk(D->Body);
    if (auto I = dyn_cast<IfNode>(St)) {
      Walk(I->Then);
      if (I->Else)
        Walk(I->Else);
    }
  };
  Walk(S);
  return Out;
}

/// Random schedule requests; rejections are fine — we only need variety in
/// the final loop structure (splits, fusions, parallel loops, tails).
void applyRandomSchedules(Schedule &S, Rng &R, int Steps) {
  for (int Step = 0; Step < Steps; ++Step) {
    std::vector<int64_t> Loops = allLoops(S.ast());
    if (Loops.empty())
      break;
    int64_t L = Loops[R.range(0, Loops.size())];
    switch (R.range(0, 6)) {
    case 0:
      (void)S.split(L, R.range(2, 5));
      break;
    case 1: {
      auto Nest = S.perfectNest(L);
      if (Nest.size() >= 2)
        (void)S.reorder({Nest[1]->Id, Nest[0]->Id});
      break;
    }
    case 2:
      (void)S.parallelize(L);
      break;
    case 3:
      (void)S.vectorize(L);
      break;
    case 4:
      (void)S.separateTail(L);
      break;
    case 5: {
      std::vector<int64_t> All = allLoops(S.ast());
      int64_t L2 = All[R.range(0, All.size())];
      if (L != L2)
        (void)S.fuse(L, L2);
      break;
    }
    }
  }
  S.cleanup();
}

std::map<std::string, Buffer> makeBuffers(const RandomProgram &P) {
  std::map<std::string, Buffer> Store;
  uint64_t I = 0;
  for (const auto &[Name, Shape] : P.Shapes) {
    Store.emplace(Name, Buffer(DataType::Float32, Shape));
    Buffer &B = Store.at(Name);
    for (int64_t K = 0; K < B.numel(); ++K)
      B.setF(K, 0.25 * double((K + ++I) % 7));
  }
  return Store;
}

std::map<std::string, Buffer *> argPtrs(std::map<std::string, Buffer> &S) {
  std::map<std::string, Buffer *> Args;
  for (auto &[Name, B] : S)
    Args[Name] = &B;
  return Args;
}

//===--------------------------------------------------------------------===//
// Profile-off emission is byte-identical to the default emission.
//===--------------------------------------------------------------------===//

TEST(ProfileTest, ProfileOffEmissionIsByteIdentical) {
  for (uint64_t Seed : {3u, 11u}) {
    RandomProgram P = makeRandomProgram(Seed);
    Rng R(Seed + 5);
    Schedule S(P.F);
    applyRandomSchedules(S, R, 8);
    Func Scheduled = S.func();

    std::string Default = generateCpp(Scheduled);
    std::string OffExplicit = generateCpp(Scheduled, CodegenOptions{});
    EXPECT_EQ(Default, OffExplicit);
    EXPECT_EQ(Default.find("_rt_profile"), std::string::npos);
    EXPECT_EQ(Default.find("ScopedAlloc"), std::string::npos);
    EXPECT_EQ(Default.find("_ft_prof"), std::string::npos);

    CodegenOptions On;
    On.Profile = true;
    std::string Instrumented = generateCpp(Scheduled, On);
    EXPECT_NE(Instrumented, Default);
    EXPECT_NE(Instrumented.find("_rt_profile"), std::string::npos);
  }
}

//===--------------------------------------------------------------------===//
// Exactness: instrumented Calls/Iters == interpreter per-stmt counts.
//===--------------------------------------------------------------------===//

class ProfileCountFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ProfileCountFuzz, KernelCountsMatchInterpreterExactly) {
  uint64_t Seed = static_cast<uint64_t>(GetParam()) * 17 + 3;
  RandomProgram P = makeRandomProgram(Seed);
  Rng R(Seed + 1);
  Schedule S(P.F);
  applyRandomSchedules(S, R, 8);
  Func Scheduled = S.func();

  // Interpreter ground truth for one execution.
  std::map<std::string, Buffer> IStore = makeBuffers(P);
  auto IArgs = argPtrs(IStore);
  InterpOptions IOpts;
  IOpts.CountStmts = true;
  InterpStats IStats = interpret(Scheduled, IArgs, IOpts);

  CodegenOptions Opts;
  Opts.Profile = true;
  auto K = Kernel::compile(Scheduled, Opts, "-O1");
  ASSERT_TRUE(K.ok()) << K.message();

  const uint64_t Runs = 3;
  std::map<std::string, Buffer> KStore = makeBuffers(P);
  auto KArgs = argPtrs(KStore);
  for (uint64_t I = 0; I < Runs; ++I)
    ASSERT_TRUE(K->run(KArgs).ok());

  profile::KernelProfile Prof = K->profileNow();
  ASSERT_FALSE(Prof.Samples.empty());

  // Root pseudo-statement: one call per kernel invocation.
  const profile::LoopSample *Root = Prof.sample(-1);
  ASSERT_NE(Root, nullptr);
  EXPECT_EQ(Root->Calls, Runs);

  // Every instrumented statement matches the interpreter exactly (kernel
  // counters are cumulative over Runs invocations), and every id resolves
  // through the source map.
  size_t Checked = 0;
  for (const profile::LoopSample &L : Prof.Samples) {
    EXPECT_NE(K->sourceMap().find(L.StmtId), nullptr)
        << "unresolved stmt id " << L.StmtId << " (seed " << Seed << ")";
    if (L.StmtId < 0)
      continue;
    auto It = IStats.PerStmt.find(L.StmtId);
    ASSERT_NE(It, IStats.PerStmt.end())
        << "kernel counted stmt " << L.StmtId
        << " the interpreter never entered (seed " << Seed << "):\n"
        << toString(Scheduled.Body);
    EXPECT_EQ(L.Calls, It->second.Calls * Runs)
        << "calls mismatch on stmt " << L.StmtId << " (seed " << Seed << ")";
    EXPECT_EQ(L.Iters, It->second.Iters * Runs)
        << "iters mismatch on stmt " << L.StmtId << " (seed " << Seed << ")";
    ++Checked;
  }
  // And the other direction: the interpreter saw no statement the kernel
  // missed.
  EXPECT_EQ(Checked, IStats.PerStmt.size())
      << "instrumentation coverage differs (seed " << Seed << ")";

  // Exactness of the counters implies the instrumentation did not perturb
  // semantics; still, cheap to assert the outputs agree.
  for (const auto &[Name, B] : IStore) {
    const Buffer &KB = KStore.at(Name);
    for (int64_t I = 0; I < B.numel(); ++I)
      ASSERT_NEAR(B.as<float>()[I], KB.as<float>()[I], 1e-4)
          << Name << "[" << I << "] seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProfileCountFuzz, ::testing::Range(1, 6));

//===--------------------------------------------------------------------===//
// Merge correctness across a 4-thread pool.
//===--------------------------------------------------------------------===//

TEST(ProfileTest, CountsExactUnderFourThreads) {
  // The pool is a per-.so static sized on first use, so the override must
  // be in the environment before the kernel's first parallelFor.
  setenv("FT_NUM_THREADS", "4", 1);

  const int64_t N = 1024;
  FunctionBuilder B("ptpool");
  View A = B.input("a", {makeIntConst(N)});
  View Y = B.output("y", {makeIntConst(N)});
  int64_t L = B.loop(
      "i", 0, N, [&](Expr I) { Y[I].assign(A[I].load() * 2.0f + 1.0f); },
      "rows");
  Func F = B.build();

  Schedule S(F);
  ASSERT_TRUE(S.parallelize(L).ok());
  Func Scheduled = S.func();

  CodegenOptions Opts;
  Opts.Profile = true;
  auto K = Kernel::compile(Scheduled, Opts, "-O1");
  unsetenv("FT_NUM_THREADS");
  ASSERT_TRUE(K.ok()) << K.message();

  std::map<std::string, Buffer> Store;
  Store.emplace("a", Buffer(DataType::Float32, {N}));
  Store.emplace("y", Buffer(DataType::Float32, {N}));
  for (int64_t I = 0; I < N; ++I)
    Store.at("a").setF(I, float(I) * 0.5f);
  auto Args = argPtrs(Store);

  const uint64_t Runs = 5;
  for (uint64_t I = 0; I < Runs; ++I)
    ASSERT_TRUE(K->run(Args).ok());

  // Iterations land on 4 worker threads; the merged table must still be
  // exact: Calls counts loop *entries* (1 per invocation), Iters the total
  // body executions across all threads.
  profile::KernelProfile Prof = K->profileNow();
  const profile::LoopSample *Loop = Prof.sample(L);
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->Calls, Runs);
  EXPECT_EQ(Loop->Iters, Runs * uint64_t(N));

  KernelRtStats St = K->rtStats();
  ASSERT_TRUE(St.Valid);
  EXPECT_EQ(St.Invocations, Runs);
  EXPECT_EQ(St.ParallelFors, Runs);
  EXPECT_EQ(St.ParallelIters, Runs * uint64_t(N));

  for (int64_t I = 0; I < N; ++I)
    ASSERT_NEAR(Store.at("y").as<float>()[I], float(I) * 0.5f * 2.0f + 1.0f,
                1e-5);
}

TEST(ProfileTest, ThreadPoolEnvOverrideIsClamped) {
  // Degenerate values must not break execution: 0/garbage fall back sanely
  // (clamped to >= 1), and the program still runs correctly.
  setenv("FT_NUM_THREADS", "0", 1);

  const int64_t N = 64;
  FunctionBuilder B("ptclamp");
  View A = B.input("a", {makeIntConst(N)});
  View Y = B.output("y", {makeIntConst(N)});
  int64_t L =
      B.loop("i", 0, N, [&](Expr I) { Y[I].assign(A[I].load() + 3.0f); });
  Func F = B.build();
  Schedule S(F);
  ASSERT_TRUE(S.parallelize(L).ok());

  auto K = Kernel::compile(S.func(), "-O0");
  unsetenv("FT_NUM_THREADS");
  ASSERT_TRUE(K.ok()) << K.message();

  std::map<std::string, Buffer> Store;
  Store.emplace("a", Buffer(DataType::Float32, {N}));
  Store.emplace("y", Buffer(DataType::Float32, {N}));
  for (int64_t I = 0; I < N; ++I)
    Store.at("a").setF(I, float(I));
  auto Args = argPtrs(Store);
  ASSERT_TRUE(K->run(Args).ok());
  for (int64_t I = 0; I < N; ++I)
    ASSERT_NEAR(Store.at("y").as<float>()[I], float(I) + 3.0f, 1e-5);
}

//===--------------------------------------------------------------------===//
// Source map & schedule provenance.
//===--------------------------------------------------------------------===//

TEST(ProfileTest, SourceMapJoinsScheduleProvenance) {
  trace::AuditGuard G; // Provenance flows through the audit log.

  const int64_t N = 32;
  FunctionBuilder B("ptprov");
  View A = B.input("a", {makeIntConst(N)});
  View Y = B.output("y", {makeIntConst(N)});
  int64_t L =
      B.loop("i", 0, N, [&](Expr I) { Y[I].assign(A[I].load() * 2.0f); },
             "rows");
  Func F = B.build();

  Schedule S(F);
  auto Split = S.split(L, 8);
  ASSERT_TRUE(Split.ok()) << Split.message();

  profile::SourceMap Map =
      profile::buildSourceMap(S.func(), trace::auditLog());

  EXPECT_EQ(Map.FuncName, "ptprov");
  ASSERT_FALSE(Map.Stmts.empty());
  // [0] is the kernel root.
  EXPECT_EQ(Map.Stmts[0].Id, -1);
  EXPECT_EQ(Map.Stmts[0].Kind, "kernel");

  // Both halves of the split resolve, carry the frontend label in their
  // path, and name the split in their provenance.
  for (int64_t Id : {Split->First, Split->Second}) {
    const profile::StmtSourceInfo *Info = Map.find(Id);
    ASSERT_NE(Info, nullptr) << "loop " << Id << " missing from source map";
    EXPECT_EQ(Info->Kind, "for");
    EXPECT_NE(Info->QualName.find("ptprov/"), std::string::npos);
    bool NamesSplit = false;
    for (const std::string &Prov : Info->Provenance)
      NamesSplit |= Prov.find("split") != std::string::npos;
    EXPECT_TRUE(NamesSplit)
        << "loop " << Id << " lost its split provenance";
  }

  // The outer half encloses the inner half in the nesting path.
  const profile::StmtSourceInfo *Outer = Map.find(Split->First);
  const profile::StmtSourceInfo *Inner = Map.find(Split->Second);
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->ParentId, Outer->Id);
  EXPECT_EQ(Inner->Depth, Outer->Depth + 1);
  EXPECT_GT(Inner->Path.size(), Outer->Path.size());
}

//===--------------------------------------------------------------------===//
// Renderers: hierarchical table, collapsed stacks, JSON.
//===--------------------------------------------------------------------===//

/// Minimal structural JSON validator: quotes, escapes, and bracket
/// balance. Enough to catch malformed emission without a JSON library.
bool jsonWellFormed(const std::string &J) {
  std::vector<char> Stack;
  bool InStr = false;
  for (size_t I = 0; I < J.size(); ++I) {
    char C = J[I];
    if (InStr) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InStr = false;
      continue;
    }
    switch (C) {
    case '"':
      InStr = true;
      break;
    case '{':
    case '[':
      Stack.push_back(C);
      break;
    case '}':
      if (Stack.empty() || Stack.back() != '{')
        return false;
      Stack.pop_back();
      break;
    case ']':
      if (Stack.empty() || Stack.back() != '[')
        return false;
      Stack.pop_back();
      break;
    default:
      break;
    }
  }
  return !InStr && Stack.empty() && !J.empty() && J[0] == '{';
}

TEST(ProfileTest, ReportsRenderAndParse) {
  RandomProgram P = makeRandomProgram(7);
  CodegenOptions Opts;
  Opts.Profile = true;
  auto K = Kernel::compile(P.F, Opts, "-O1");
  ASSERT_TRUE(K.ok()) << K.message();

  std::map<std::string, Buffer> Store = makeBuffers(P);
  auto Args = argPtrs(Store);
  ASSERT_TRUE(K->run(Args).ok());

  profile::KernelProfile Prof = K->profileNow();

  // Table: one row per sample, loops addressed by label#id.
  std::string Table = profile::formatTable(Prof);
  EXPECT_NE(Table.find(P.F.Name), std::string::npos);
  EXPECT_NE(Table.find("L1#"), std::string::npos);
  EXPECT_NE(Table.find("L2#"), std::string::npos);

  // Collapsed stacks: "frame;frame;... <selfNs>" per line.
  std::string Folded = profile::toFolded(Prof);
  ASSERT_FALSE(Folded.empty());
  size_t Lines = 0, Begin = 0;
  while (Begin < Folded.size()) {
    size_t End = Folded.find('\n', Begin);
    if (End == std::string::npos)
      End = Folded.size();
    std::string Line = Folded.substr(Begin, End - Begin);
    Begin = End + 1;
    if (Line.empty())
      continue;
    ++Lines;
    size_t Sp = Line.rfind(' ');
    ASSERT_NE(Sp, std::string::npos) << "bad folded line: " << Line;
    std::string Count = Line.substr(Sp + 1);
    ASSERT_FALSE(Count.empty());
    for (char C : Count)
      ASSERT_TRUE(C >= '0' && C <= '9') << "bad folded count: " << Line;
    // Frames are rooted at the function name.
    EXPECT_EQ(Line.rfind(P.F.Name, 0), 0u) << "unrooted stack: " << Line;
  }
  EXPECT_GT(Lines, 0u);

  // JSON: structurally valid, rows resolved, schema fields present.
  std::string J = profile::toJson(Prof);
  EXPECT_TRUE(jsonWellFormed(J)) << J;
  EXPECT_NE(J.find("\"loops\""), std::string::npos);
  EXPECT_NE(J.find("\"est_self_ns\""), std::string::npos);
  EXPECT_NE(J.find("\"resolved\":true"), std::string::npos);
  EXPECT_EQ(J.find("\"resolved\":false"), std::string::npos);

  // The registry aggregate is JSON too.
  profile::clearProfiles();
  profile::record(Prof);
  std::string Snap = profile::snapshotJson();
  EXPECT_TRUE(jsonWellFormed(Snap)) << Snap;
  EXPECT_NE(Snap.find("\"profiles\""), std::string::npos);
  EXPECT_NE(Snap.find(P.F.Name), std::string::npos);
  profile::clearProfiles();
}

//===--------------------------------------------------------------------===//
// Memory accounting through the versioned rt_stats ABI.
//===--------------------------------------------------------------------===//

TEST(ProfileTest, HeapCacheMemoryAccounting) {
  // A MemType::CPU cache too big for the stack-array path: codegen backs
  // it with the runtime allocator, which the profiler instruments.
  const int64_t N = 128, M = 257;
  FunctionBuilder B("ptmem");
  View A = B.input("a", {makeIntConst(N), makeIntConst(M)});
  View Y = B.output("y", {makeIntConst(N)});
  View Buf = B.local("buf", {makeIntConst(N), makeIntConst(M)},
                     DataType::Float32, MemType::CPU);
  B.loop("i", 0, N, [&](Expr I) {
    B.loop("j", 0, M,
           [&](Expr J) { Buf[I][J].assign(A[I][J].load() * 2.0f); });
  });
  B.loop("i", 0, N, [&](Expr I) {
    View T = B.local("t", {});
    T.assign(0.0);
    B.loop("j", 0, M, [&](Expr J) { T += Buf[I][J].load(); });
    Y[I].assign(T.load());
  });
  Func F = B.build();

  CodegenOptions Opts;
  Opts.Profile = true;
  auto K = Kernel::compile(F, Opts, "-O1");
  ASSERT_TRUE(K.ok()) << K.message();

  std::map<std::string, Buffer> Store;
  Store.emplace("a", Buffer(DataType::Float32, {N, M}));
  Store.emplace("y", Buffer(DataType::Float32, {N}));
  for (int64_t I = 0; I < N * M; ++I)
    Store.at("a").setF(I, 0.001f * float(I % 101));
  auto Args = argPtrs(Store);

  const uint64_t Runs = 2;
  for (uint64_t I = 0; I < Runs; ++I)
    ASSERT_TRUE(K->run(Args).ok());

  const uint64_t BufBytes = uint64_t(N) * uint64_t(M) * sizeof(float);
  KernelRtStats St = K->rtStats();
  ASSERT_TRUE(St.Valid) << "rt_stats header rejected";
  EXPECT_EQ(St.Invocations, Runs);
  // Peak live: at least the cache tensor while the kernel ran...
  EXPECT_GE(St.PeakBytes, BufBytes);
  // ...fully released once it returned...
  EXPECT_EQ(St.CurrentBytes, 0u);
  // ...allocated once per invocation.
  EXPECT_GE(St.AllocCount, Runs);
  EXPECT_GE(St.TotalAllocBytes, BufBytes * Runs);

  // Same numbers surface on the profile snapshot.
  profile::KernelProfile Prof = K->profileNow();
  EXPECT_EQ(Prof.PeakBytes, St.PeakBytes);
  EXPECT_EQ(Prof.CurrentBytes, 0u);
  EXPECT_EQ(Prof.TotalAllocBytes, St.TotalAllocBytes);
}

//===--------------------------------------------------------------------===//
// Profile-off kernels still export valid (versioned) rt_stats.
//===--------------------------------------------------------------------===//

TEST(ProfileTest, UnprofiledKernelHasVersionedStats) {
  RandomProgram P = makeRandomProgram(9);
  auto K = Kernel::compile(P.F, "-O1");
  ASSERT_TRUE(K.ok()) << K.message();
  EXPECT_FALSE(K->profiled());

  std::map<std::string, Buffer> Store = makeBuffers(P);
  auto Args = argPtrs(Store);
  ASSERT_TRUE(K->run(Args).ok());

  KernelRtStats St = K->rtStats();
  ASSERT_TRUE(St.Valid);
  EXPECT_EQ(St.Invocations, 1u);
  // No profiler, no allocator instrumentation.
  EXPECT_EQ(St.AllocCount, 0u);
}

} // namespace
