//===- tests/libop2_test.cpp - Extended libop operators ---------------------===//
//
// Covers the extended operator library (transpose / concat / linear /
// squaredError) including differentiating a whole dense layer + loss —
// a miniature end-to-end training-step in the DSL.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <gtest/gtest.h>

#include "autodiff/grad.h"
#include "frontend/libop.h"
#include "interp/interp.h"

using namespace ft;

namespace {

Expr ic(int64_t V) { return makeIntConst(V); }

TEST(Libop2Test, Transpose) {
  FunctionBuilder B("t");
  View X = B.input("x", {ic(2), ic(3)});
  View Y = B.output("y", {ic(3), ic(2)});
  libop::transpose(B, X, Y);
  Func F = B.build();
  Buffer BX = Buffer::fromF32({2, 3}, {1, 2, 3, 4, 5, 6});
  Buffer BY(DataType::Float32, {3, 2});
  interpret(F, {{"x", &BX}, {"y", &BY}});
  EXPECT_FLOAT_EQ(BY.as<float>()[0], 1);
  EXPECT_FLOAT_EQ(BY.as<float>()[1], 4);
  EXPECT_FLOAT_EQ(BY.as<float>()[4], 3);
}

TEST(Libop2Test, Concat0) {
  FunctionBuilder B("c");
  View X = B.input("x", {ic(2), ic(2)});
  View Y = B.input("yy", {ic(3), ic(2)});
  View O = B.output("o", {ic(5), ic(2)});
  libop::concat0(B, X, Y, O);
  Func F = B.build();
  Buffer BX = Buffer::fromF32({2, 2}, {1, 2, 3, 4});
  Buffer BY = Buffer::fromF32({3, 2}, {5, 6, 7, 8, 9, 10});
  Buffer BO(DataType::Float32, {5, 2});
  interpret(F, {{"x", &BX}, {"yy", &BY}, {"o", &BO}});
  EXPECT_FLOAT_EQ(BO.as<float>()[0], 1);
  EXPECT_FLOAT_EQ(BO.as<float>()[4], 5);
  EXPECT_FLOAT_EQ(BO.as<float>()[9], 10);
}

TEST(Libop2Test, LinearLayer) {
  FunctionBuilder B("lin");
  View X = B.input("x", {ic(2), ic(3)});
  View W = B.input("w", {ic(3), ic(2)});
  View Bias = B.input("bias", {ic(2)});
  View O = B.output("o", {ic(2), ic(2)});
  libop::linear(B, X, W, Bias, O);
  Func F = B.build();
  Buffer BX = Buffer::fromF32({2, 3}, {1, 2, 3, 4, 5, 6});
  Buffer BW = Buffer::fromF32({3, 2}, {1, 0, 0, 1, 1, 1});
  Buffer BB = Buffer::fromF32({2}, {10, 20});
  Buffer BO(DataType::Float32, {2, 2});
  interpret(F, {{"x", &BX}, {"w", &BW}, {"bias", &BB}, {"o", &BO}});
  EXPECT_FLOAT_EQ(BO.as<float>()[0], 1 + 3 + 10);
  EXPECT_FLOAT_EQ(BO.as<float>()[1], 2 + 3 + 20);
}

TEST(Libop2Test, TrainableDenseLayerGradients) {
  // loss = sum((linear(x, w, b) - target)^2); differentiate w.r.t. w, b.
  const int64_t N = 3, In = 4, Outs = 2;
  FunctionBuilder B("train");
  View X = B.input("x", {ic(N), ic(In)});
  View W = B.input("w", {ic(In), ic(Outs)});
  View Bias = B.input("bias", {ic(Outs)});
  View Target = B.input("target", {ic(N), ic(Outs)});
  View Loss = B.output("loss", {});
  View Pred = B.local("pred", {ic(N), ic(Outs)});
  libop::linear(B, X, W, Bias, Pred);
  Loss.assign(0.0);
  libop::squaredError(B, Pred, Target, Loss);
  Func F = B.build();

  auto G = grad(F, {"w", "bias"});
  ASSERT_TRUE(G.ok()) << G.message();

  // Run fwd/bwd via interpreter and finite-difference a few entries.
  std::map<std::string, Buffer> Store;
  auto Fill = [&](const std::string &Name, std::vector<int64_t> Shape,
                  double Phase) {
    Store.emplace(Name, Buffer(DataType::Float32, std::move(Shape)));
    Buffer &Bu = Store.at(Name);
    for (int64_t I = 0; I < Bu.numel(); ++I)
      Bu.setF(I, 0.3 * std::sin(0.9 * double(I) + Phase));
  };
  Fill("x", {N, In}, 1);
  Fill("w", {In, Outs}, 2);
  Fill("bias", {Outs}, 3);
  Fill("target", {N, Outs}, 4);
  Store.emplace("loss", Buffer(DataType::Float32, {}));
  for (const std::string &T : G->Tapes) {
    auto D = findVarDef(G->Forward.Body, T);
    std::vector<int64_t> Shape;
    for (const Expr &E : D->Info.Shape)
      Shape.push_back(cast<IntConstNode>(E)->Val);
    Store.emplace(T, Buffer(DataType::Float32, Shape));
  }
  Buffer SeedB(DataType::Float32, {});
  SeedB.setF(0, 1.0);
  Store.emplace(G->SeedNames.at("loss"), std::move(SeedB));
  Store.emplace(G->GradNames.at("w"), Buffer(DataType::Float32, {In, Outs}));
  Store.emplace(G->GradNames.at("bias"),
                Buffer(DataType::Float32, {Outs}));

  std::map<std::string, Buffer *> FwdArgs, BwdArgs;
  for (const std::string &P : G->Forward.Params)
    FwdArgs[P] = &Store.at(P);
  for (const std::string &P : G->Backward.Params)
    BwdArgs[P] = &Store.at(P);
  interpret(G->Forward, FwdArgs);
  interpret(G->Backward, BwdArgs);

  auto LossAt = [&](const std::string &Wrt, int64_t Probe, double Delta) {
    std::map<std::string, Buffer> FD;
    for (const std::string &P : F.Params)
      FD.emplace(P, Store.at(P));
    FD.at(Wrt).setF(Probe, FD.at(Wrt).getF(Probe) + Delta);
    std::map<std::string, Buffer *> Args;
    for (auto &[Nm, Bu] : FD)
      Args[Nm] = &Bu;
    interpret(F, Args);
    return FD.at("loss").getF(0);
  };
  const double Eps = 1e-3;
  for (const std::string &Wrt : {"w", "bias"}) {
    const Buffer &GB = Store.at(G->GradNames.at(Wrt));
    for (int64_t Probe = 0; Probe < GB.numel(); ++Probe) {
      double Numeric = (LossAt(Wrt, Probe, Eps) - LossAt(Wrt, Probe, -Eps)) /
                       (2 * Eps);
      EXPECT_NEAR(GB.getF(Probe), Numeric, 2e-2)
          << Wrt << "[" << Probe << "]";
    }
  }
}

} // namespace
