//===- tests/trace_test.cpp - Observability layer ---------------------------===//
//
// The tracing & metrics subsystem: span nesting/ordering invariants,
// annotations surviving to the Chrome-trace JSON sink, zero recording in
// disabled mode, the schedule decision audit log (a known-rejected reorder
// with its dependence reason), and snapshot() counters agreeing with the
// legacy FT_STATS table.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "autoschedule/autoschedule.h"
#include "frontend/builder.h"
#include "schedule/schedule.h"
#include "support/metrics.h"
#include "support/stats.h"
#include "support/trace.h"

using namespace ft;

namespace {

Expr ic(int64_t V) { return makeIntConst(V); }

/// y[i][j] = y[i-1][j+1] + 1: the dependence direction over (i, j) is
/// (<, >), so swapping the two loops reverses it — the textbook illegal
/// reorder.
struct AntiDiagonal {
  Func F;
  int64_t Li = -1, Lj = -1;
};

AntiDiagonal buildAntiDiagonal() {
  FunctionBuilder B("r");
  View Y = B.output("y", {ic(8), ic(8)});
  AntiDiagonal T;
  T.Li = B.loop("i", 1, 8, [&](Expr I) {
    T.Lj = B.loop("j", 0, 7, [&](Expr J) {
      Y[I][J].assign(Y[makeSub(I, ic(1))][makeAdd(J, ic(1))].load() +
                     makeFloatConst(1.0));
    });
  });
  T.F = B.build();
  return T;
}

} // namespace

TEST(TraceTest, SpanNestingAndOrdering) {
  trace::EnabledGuard G;
  trace::clear();
  {
    trace::Span Outer("test/outer");
    {
      FT_SPAN("test/inner");
      trace::Span Innermost("test/innermost");
    }
  }
  auto Snap = trace::snapshot();
  ASSERT_EQ(Snap.Spans.size(), 3u);
  // Spans are recorded at close: innermost completes first.
  EXPECT_EQ(Snap.Spans[0].Name, "test/innermost");
  EXPECT_EQ(Snap.Spans[1].Name, "test/inner");
  EXPECT_EQ(Snap.Spans[2].Name, "test/outer");
  // Depth reflects nesting on the opening thread.
  EXPECT_EQ(Snap.Spans[2].Depth, 0);
  EXPECT_EQ(Snap.Spans[1].Depth, 1);
  EXPECT_EQ(Snap.Spans[0].Depth, 2);
  // Seq is the global completion order.
  EXPECT_LT(Snap.Spans[0].Seq, Snap.Spans[1].Seq);
  EXPECT_LT(Snap.Spans[1].Seq, Snap.Spans[2].Seq);
  // A child opens no earlier than its parent and fits inside it.
  EXPECT_GE(Snap.Spans[1].StartUs, Snap.Spans[2].StartUs);
  EXPECT_LE(Snap.Spans[1].StartUs + Snap.Spans[1].DurUs,
            Snap.Spans[2].StartUs + Snap.Spans[2].DurUs + 1e-3);
  trace::clear();
}

TEST(TraceTest, AnnotationsSurviveToJsonSink) {
  trace::EnabledGuard G;
  trace::clear();
  {
    trace::Span Sp("test/annotated");
    Sp.annotate("str_key", std::string("str value"));
    Sp.annotate("int_key", uint64_t(42));
  }
  const char *Path = "/tmp/ft_trace_test.json";
  Status St = trace::writeChromeTrace(Path);
  ASSERT_TRUE(St.ok()) << St.message();
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Json = Buf.str();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"test/annotated\""), std::string::npos);
  EXPECT_NE(Json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"str_key\":\"str value\""), std::string::npos);
  EXPECT_NE(Json.find("\"int_key\":\"42\""), std::string::npos);
  std::remove(Path);
  trace::clear();
}

TEST(TraceTest, JsonEscaping) {
  trace::EnabledGuard G;
  trace::clear();
  {
    trace::Span Sp("test/escape");
    Sp.annotate("quote", std::string("a \"b\" \\ c\nd"));
  }
  const char *Path = "/tmp/ft_trace_escape_test.json";
  ASSERT_TRUE(trace::writeChromeTrace(Path).ok());
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Json = Buf.str();
  EXPECT_NE(Json.find("a \\\"b\\\" \\\\ c\\nd"), std::string::npos);
  std::remove(Path);
  trace::clear();
}

TEST(TraceTest, FlowEventsLinkSpansAcrossThreads) {
  trace::EnabledGuard G;
  trace::clear();
  {
    trace::Span Producer("test/enqueue");
    trace::emitFlow("test/req", 7, 's');
  }
  {
    trace::Span Step("test/request");
    trace::emitFlow("test/req", 7, 't');
  }
  {
    trace::Span Consumer("test/compile");
    trace::emitFlow("test/req", 7, 'f');
  }
  auto Snap = trace::snapshot();
  ASSERT_EQ(Snap.Flows.size(), 3u);
  EXPECT_EQ(Snap.Flows[0].Phase, 's');
  EXPECT_EQ(Snap.Flows[1].Phase, 't');
  EXPECT_EQ(Snap.Flows[2].Phase, 'f');
  for (const trace::FlowEvent &E : Snap.Flows) {
    EXPECT_EQ(E.Name, "test/req");
    EXPECT_EQ(E.Id, 7u);
  }
  // Timestamps are monotone in emission order so each point binds to the
  // span that was open when it was emitted.
  EXPECT_LE(Snap.Flows[0].TsUs, Snap.Flows[1].TsUs);
  EXPECT_LE(Snap.Flows[1].TsUs, Snap.Flows[2].TsUs);

  const char *Path = "/tmp/ft_trace_flow_test.json";
  ASSERT_TRUE(trace::writeChromeTrace(Path).ok());
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Json = Buf.str();
  EXPECT_NE(Json.find("\"cat\":\"flow\",\"ph\":\"s\",\"id\":7"),
            std::string::npos);
  EXPECT_NE(Json.find("\"cat\":\"flow\",\"ph\":\"t\",\"id\":7"),
            std::string::npos);
  // The finish carries bp:"e" so it binds to its enclosing slice.
  EXPECT_NE(Json.find("\"cat\":\"flow\",\"ph\":\"f\",\"id\":7"),
            std::string::npos);
  size_t FPos = Json.find("\"ph\":\"f\",\"id\":7");
  ASSERT_NE(FPos, std::string::npos);
  EXPECT_NE(Json.find("\"bp\":\"e\"", FPos), std::string::npos);
  std::remove(Path);
  trace::clear();
}

TEST(TraceTest, FlowEventsRespectDisabledModeAndClear) {
  {
    trace::EnabledGuard G(/*On=*/false, /*Audit=*/false);
    trace::emitFlow("test/req", 9, 's');
    EXPECT_EQ(trace::snapshot().Flows.size(), 0u);
  }
  {
    trace::EnabledGuard G;
    trace::clear();
    trace::emitFlow("test/req", 9, 's');
    EXPECT_EQ(trace::snapshot().Flows.size(), 1u);
    trace::clear();
    EXPECT_EQ(trace::snapshot().Flows.size(), 0u);
  }
}

TEST(TraceTest, DisabledModeEmitsNothing) {
  trace::EnabledGuard G(/*On=*/false, /*Audit=*/false);
  trace::clear();
  size_t Before = trace::snapshot().Spans.size();
  {
    FT_SPAN("test/should_not_record");
    trace::Span Sp("test/also_not");
    Sp.annotate("k", std::string("v"));
    EXPECT_FALSE(Sp.active());
  }
  Schedule S(buildAntiDiagonal().F);
  (void)S.split(987654321, 2); // Audit off: no decision either.
  auto Snap = trace::snapshot();
  EXPECT_EQ(Snap.Spans.size(), Before);
  EXPECT_EQ(Snap.Audit.size(), 0u);
}

TEST(TraceTest, AuditLogRecordsRejectedReorder) {
  trace::AuditGuard G; // Audit forced on, spans untouched.
  AntiDiagonal T = buildAntiDiagonal();
  Schedule S(T.F);
  size_t Mark = trace::auditSize();
  Status St = S.reorder({T.Lj, T.Li});
  ASSERT_FALSE(St.ok());
  EXPECT_NE(St.message().find("reverse a dependence"), std::string::npos);

  auto Log = trace::auditLogSince(Mark);
  ASSERT_EQ(Log.size(), 1u);
  const trace::ScheduleDecision &D = Log[0];
  EXPECT_EQ(D.Primitive, "reorder");
  EXPECT_FALSE(D.Applied);
  EXPECT_EQ(D.Reason, St.message());
  EXPECT_NE(D.Target.find("loops ["), std::string::npos);
  // The legality check issued real dependence queries.
  EXPECT_GT(D.DepQueries, 0u);

  // An applied primitive records Applied=true with an empty reason.
  Mark = trace::auditSize();
  auto R = S.split(T.Lj, 7);
  ASSERT_TRUE(R.ok()) << R.message();
  Log = trace::auditLogSince(Mark);
  ASSERT_EQ(Log.size(), 1u);
  EXPECT_EQ(Log[0].Primitive, "split");
  EXPECT_TRUE(Log[0].Applied);
  EXPECT_TRUE(Log[0].Reason.empty());
}

TEST(TraceTest, SnapshotCountersMatchLegacyStats) {
  stats::reset();
  AntiDiagonal T = buildAntiDiagonal();
  Schedule S(T.F);
  (void)S.vectorize(T.Lj); // Issues dependence queries.
  uint64_t Legacy = stats::counters().DepQueries.load();
  ASSERT_GT(Legacy, 0u);

  // Programmatic snapshot sees the same value under the registry name.
  auto Snap = trace::snapshot();
  uint64_t FromSnapshot = 0;
  bool Found = false;
  for (const auto &[Name, Val] : Snap.Counters)
    if (Name == "deps/dep_queries") {
      FromSnapshot = Val;
      Found = true;
    }
  ASSERT_TRUE(Found);
  EXPECT_EQ(FromSnapshot, Legacy);

  // And the legacy FT_STATS table prints the same number.
  const char *Path = "/tmp/ft_stats_dump_test.txt";
  std::FILE *F = std::fopen(Path, "w");
  ASSERT_NE(F, nullptr);
  stats::dump(F);
  std::fclose(F);
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Table = Buf.str();
  EXPECT_NE(
      Table.find("dep queries (mayDepend):     " + std::to_string(Legacy)),
      std::string::npos)
      << Table;
  std::remove(Path);
}

TEST(TraceTest, MetricsRegistryBasics) {
  metrics::Counter &C = metrics::counter("test/basics");
  metrics::Counter &Same = metrics::counter("test/basics");
  EXPECT_EQ(&C, &Same); // Stable identity per name.
  C = 0;
  C.fetch_add(3);
  EXPECT_EQ(C.load(), 3u);
  bool Seen = false;
  for (const auto &[Name, Val] : metrics::snapshot())
    if (Name == "test/basics") {
      EXPECT_EQ(Val, 3u);
      Seen = true;
    }
  EXPECT_TRUE(Seen);
}

TEST(TraceTest, AutoScheduleRuleTally) {
  AntiDiagonal T = buildAntiDiagonal();
  AutoScheduleReport Rep;
  // Collected even with tracing off: autoSchedule forces the audit log.
  (void)autoScheduleFunc(T.F, {}, &Rep);
  int Tried = 0;
  for (const auto &[Rule, Tally] : Rep.Rules) {
    EXPECT_EQ(Tally.Tried, Tally.Applied + Tally.Rejected) << Rule;
    Tried += Tally.Tried;
  }
  EXPECT_GT(Tried, 0);
}
