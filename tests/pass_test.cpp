//===- tests/pass_test.cpp - const_fold / simplify / reduction / DCE ------===//

#include <gtest/gtest.h>

#include "ir/compare.h"
#include "ir/printer.h"
#include "pass/const_fold.h"
#include "pass/flatten.h"
#include "pass/make_reduction.h"
#include "pass/remove_writes.h"
#include "pass/replace.h"
#include "pass/simplify.h"
#include "pass/sink_var.h"

using namespace ft;

namespace {

Expr ld(const std::string &V, std::vector<Expr> I,
        DataType D = DataType::Float32) {
  return makeLoad(V, std::move(I), D);
}
Expr iv(const std::string &N) { return makeVar(N); }
Expr ic(int64_t V) { return makeIntConst(V); }

TEST(ConstFoldTest, Arithmetic) {
  EXPECT_EQ(toString(constFold(makeAdd(ic(2), ic(3)))), "5");
  EXPECT_EQ(toString(constFold(makeMul(makeAdd(ic(1), ic(1)), iv("x")))),
            "(2 * x)");
  EXPECT_EQ(toString(constFold(makeAdd(iv("x"), ic(0)))), "x");
  EXPECT_EQ(toString(constFold(makeMul(iv("x"), ic(1)))), "x");
  EXPECT_EQ(toString(constFold(makeFloorDiv(ic(-7), ic(2)))), "-4");
  EXPECT_EQ(toString(constFold(makeMod(ic(-7), ic(2)))), "1");
  EXPECT_EQ(toString(constFold(makeMin(ic(3), ic(5)))), "3");
}

TEST(ConstFoldTest, FloatZeroMulNotFolded) {
  // 0 * f is NOT folded for float operands (NaN/Inf semantics)...
  Expr F = ld("f", {});
  Expr E = constFold(makeMul(ic(0), F));
  EXPECT_TRUE(isa<BinaryNode>(E));
  // ... but is for integer operands.
  Expr I = ld("i", {}, DataType::Int64);
  EXPECT_EQ(toString(constFold(makeMul(ic(0), I))), "0");
}

TEST(ConstFoldTest, LogicAndSelect) {
  EXPECT_EQ(toString(constFold(makeLAnd(makeBoolConst(true), iv("c")))), "c");
  EXPECT_EQ(toString(constFold(makeLAnd(makeBoolConst(false), iv("c")))),
            "false");
  EXPECT_EQ(toString(constFold(makeLOr(makeBoolConst(true), iv("c")))),
            "true");
  Expr Sel = makeIfExpr(makeLT(ic(1), ic(2)), iv("a"), iv("b"));
  EXPECT_EQ(toString(constFold(Sel)), "a");
}

TEST(ConstFoldTest, CastFolding) {
  EXPECT_EQ(toString(constFold(makeCast(DataType::Int64,
                                        makeFloatConst(3.7)))),
            "3");
  // Cast to same type vanishes.
  Expr L = ld("x", {});
  EXPECT_EQ(toString(constFold(makeCast(DataType::Float32, L))), "x");
}

TEST(FlattenTest, NestedSeqAndEmptyBranches) {
  Stmt S1 = makeStore("a", {}, ic(1));
  Stmt S2 = makeStore("b", {}, ic(2));
  Stmt Nested = makeStmtSeq({makeStmtSeq({S1}), makeStmtSeq({}), S2});
  Stmt Flat = flattenStmtSeq(Nested);
  auto Seq = cast<StmtSeqNode>(Flat);
  ASSERT_EQ(Seq->Stmts.size(), 2u);
  EXPECT_TRUE(deepEqual(Seq->Stmts[0], S1));

  Stmt DeadIf = makeIf(iv("c"), makeStmtSeq({}));
  EXPECT_TRUE(isEmptyStmt(flattenStmtSeq(DeadIf)));

  Stmt ElseOnly = makeIf(iv("c"), makeStmtSeq({}), S1);
  Stmt F = flattenStmtSeq(ElseOnly);
  auto I = cast<IfNode>(F);
  EXPECT_EQ(toString(I->Cond), "(not c)");
}

TEST(SimplifyTest, RemovesProvableBranch) {
  // for i in 0:10: if i >= 0: a[i] = 1  ->  guard removed.
  Stmt Body = makeIf(makeGE(iv("i"), ic(0)), makeStore("a", {iv("i")}, ic(1)));
  Stmt Loop = makeFor("i", ic(0), ic(10), ForProperty{}, Body);
  Stmt S = simplify(Loop);
  EXPECT_EQ(toString(S), "for i in 0:10\n  a[i] = 1\n");
}

TEST(SimplifyTest, RemovesUnreachableBranchAndDeadLoop) {
  Stmt Dead = makeIf(makeLT(iv("i"), ic(0)), makeStore("a", {iv("i")}, ic(1)));
  Stmt Loop = makeFor("i", ic(0), ic(10), ForProperty{}, Dead);
  EXPECT_TRUE(isEmptyStmt(simplify(Loop)));

  Stmt EmptyRange = makeFor("i", ic(5), ic(5), ForProperty{},
                            makeStore("a", {iv("i")}, ic(1)));
  EXPECT_TRUE(isEmptyStmt(simplify(EmptyRange)));
}

TEST(SimplifyTest, SingleIterationLoopInlined) {
  Stmt Loop = makeFor("i", ic(3), ic(4), ForProperty{},
                      makeStore("a", {iv("i")}, iv("i")));
  Stmt S = simplify(Loop);
  EXPECT_EQ(toString(S), "a[3] = 3\n");
}

TEST(SimplifyTest, MinMaxResolvedFromRanges) {
  // for i in 0:10: a[i] = min(i, 100) -> a[i] = i.
  Stmt Loop = makeFor("i", ic(0), ic(10), ForProperty{},
                      makeStore("a", {iv("i")}, makeMin(iv("i"), ic(100))));
  EXPECT_EQ(toString(simplify(Loop)), "for i in 0:10\n  a[i] = i\n");
}

TEST(SimplifyTest, GuardWithParameterKept) {
  // if i < n with n unknown stays (cannot prove).
  Expr N = ld("n", {}, DataType::Int64);
  Stmt Body = makeIf(makeLT(iv("i"), N), makeStore("a", {iv("i")}, ic(1)));
  Stmt Loop = makeFor("i", ic(0), ic(10), ForProperty{}, Body);
  Stmt Root = makeVarDef("n", TensorInfo{{}, DataType::Int64},
                         AccessType::Input, MemType::CPU, Loop);
  std::string P = toString(simplify(Root));
  EXPECT_NE(P.find("if (i < n)"), std::string::npos);
}

TEST(SimplifyTest, GuardImpliedByLoopBoundRemoved) {
  // for i in 0:n: if i < n: ... -> guard provable from the loop range.
  Expr N = ld("n", {}, DataType::Int64);
  Stmt Body = makeIf(makeLT(iv("i"), N), makeStore("a", {iv("i")}, ic(1)));
  Stmt Loop = makeFor("i", ic(0), N, ForProperty{}, Body);
  Stmt Root = makeVarDef("n", TensorInfo{{}, DataType::Int64},
                         AccessType::Input, MemType::CPU, Loop);
  std::string P = toString(simplify(Root));
  EXPECT_EQ(P.find("if"), std::string::npos);
}

TEST(MakeReductionTest, RecognizesPatterns) {
  // a[i] = a[i] + b[i]  ->  a[i] += b[i].
  Stmt S = makeStore("a", {iv("i")},
                     makeAdd(ld("a", {iv("i")}), ld("b", {iv("i")})));
  Stmt R = makeReduction(S);
  ASSERT_TRUE(isa<ReduceToNode>(R));
  EXPECT_EQ(cast<ReduceToNode>(R)->Op, ReduceOpKind::Add);
  EXPECT_EQ(R->Id, S->Id); // Identity preserved.

  // Commuted form.
  Stmt S2 = makeStore("a", {}, makeMax(ld("x", {}), ld("a", {})));
  EXPECT_TRUE(isa<ReduceToNode>(makeReduction(S2)));

  // Subtraction becomes += -e.
  Stmt S3 = makeStore("a", {}, makeSub(ld("a", {}), ld("x", {})));
  Stmt R3 = makeReduction(S3);
  ASSERT_TRUE(isa<ReduceToNode>(R3));
  EXPECT_EQ(cast<ReduceToNode>(R3)->Op, ReduceOpKind::Add);
}

TEST(MakeReductionTest, RejectsNonReductions) {
  // a[i] = a[i+1] + b[i] is not a reduction.
  Stmt S = makeStore("a", {iv("i")},
                     makeAdd(ld("a", {makeAdd(iv("i"), ic(1))}),
                             ld("b", {iv("i")})));
  EXPECT_TRUE(isa<StoreNode>(makeReduction(S)));
  // a = a + a is not (target read twice).
  Stmt S2 = makeStore("a", {}, makeAdd(ld("a", {}), ld("a", {})));
  EXPECT_TRUE(isa<StoreNode>(makeReduction(S2)));
}

TEST(RemoveWritesTest, DeadCacheChainRemoved) {
  // var t: { t = b[0]; var u: u = t }  -- u dead, then t dead.
  Stmt WriteU = makeStore("u", {}, ld("t", {}));
  Stmt DefU = makeVarDef("u", TensorInfo{{}, DataType::Float32},
                         AccessType::Cache, MemType::CPU, WriteU);
  Stmt WriteT = makeStore("t", {}, ld("b", {ic(0)}));
  Stmt DefT = makeVarDef("t", TensorInfo{{}, DataType::Float32},
                         AccessType::Cache, MemType::CPU,
                         makeStmtSeq({WriteT, DefU}));
  Stmt Out = removeDeadWrites(DefT);
  EXPECT_TRUE(isEmptyStmt(Out));
}

TEST(RemoveWritesTest, LiveCacheKept) {
  Stmt WriteT = makeStore("t", {}, ic(1));
  Stmt UseT = makeStore("y", {}, ld("t", {}));
  Stmt DefT = makeVarDef("t", TensorInfo{{}, DataType::Float32},
                         AccessType::Cache, MemType::CPU,
                         makeStmtSeq({WriteT, UseT}));
  Stmt Out = removeDeadWrites(DefT);
  EXPECT_FALSE(isEmptyStmt(Out));
  EXPECT_TRUE(isa<VarDefNode>(Out));
}

TEST(SinkVarTest, SinksIntoLoopWhenNotCarried) {
  // var t: for i: { t = a[i]; b[i] = t }  ->  for i: var t: ...
  Stmt S1 = makeStore("t", {}, ld("a", {iv("i")}));
  Stmt S2 = makeStore("b", {iv("i")}, ld("t", {}));
  Stmt Loop = makeFor("i", ic(0), ic(10), ForProperty{},
                      makeStmtSeq({S1, S2}));
  Stmt Def = makeVarDef("t", TensorInfo{{}, DataType::Float32},
                        AccessType::Cache, MemType::CPU, Loop);
  Stmt Out = sinkVars(Def);
  ASSERT_TRUE(isa<ForNode>(Out));
  EXPECT_TRUE(isa<VarDefNode>(cast<ForNode>(Out)->Body));
}

TEST(SinkVarTest, DoesNotSinkCarriedValue) {
  // var t: { t = 0; for i: { b[i] = t; t = a[i] } } -- t carries across
  // iterations; must not sink into the loop.
  Stmt Init = makeStore("t", {}, ic(0));
  Stmt Use = makeStore("b", {iv("i")}, ld("t", {}));
  Stmt Upd = makeStore("t", {}, ld("a", {iv("i")}));
  Stmt Loop = makeFor("i", ic(0), ic(10), ForProperty{},
                      makeStmtSeq({Use, Upd}));
  Stmt Def = makeVarDef("t", TensorInfo{{}, DataType::Float32},
                        AccessType::Cache, MemType::CPU,
                        makeStmtSeq({Init, Loop}));
  Stmt Out = sinkVars(Def);
  EXPECT_TRUE(isa<VarDefNode>(Out));
}

TEST(SinkVarTest, NarrowsToUseRangeInSeq) {
  // var t: { x = 1; t = 2; y = t; z = 3 } -> t wraps only the middle two.
  Stmt SX = makeStore("x", {}, ic(1));
  Stmt ST = makeStore("t", {}, ic(2));
  Stmt SY = makeStore("y", {}, ld("t", {}));
  Stmt SZ = makeStore("z", {}, ic(3));
  Stmt Def = makeVarDef("t", TensorInfo{{}, DataType::Float32},
                        AccessType::Cache, MemType::CPU,
                        makeStmtSeq({SX, ST, SY, SZ}));
  Stmt Out = sinkVars(Def);
  ASSERT_TRUE(isa<StmtSeqNode>(Out));
  auto Seq = cast<StmtSeqNode>(Out);
  ASSERT_EQ(Seq->Stmts.size(), 3u);
  EXPECT_TRUE(isa<StoreNode>(Seq->Stmts[0]));
  EXPECT_TRUE(isa<VarDefNode>(Seq->Stmts[1]));
  EXPECT_TRUE(isa<StoreNode>(Seq->Stmts[2]));
}

TEST(ReplaceTest, SubstituteAndRename) {
  Stmt S = makeStore("a", {iv("i")}, ld("b", {iv("i")}));
  Stmt T = substituteIter(S, "i", makeAdd(iv("j"), ic(1)));
  EXPECT_EQ(toString(T), "a[(j + 1)] = b[(j + 1)]\n");
  Stmt U = renameTensor(S, "b", "b.cache");
  EXPECT_EQ(toString(U), "a[i] = b.cache[i]\n");
  Stmt V = remapIndices(S, "a", [](const std::vector<Expr> &Idx) {
    return std::vector<Expr>{ic(0), Idx[0]};
  });
  EXPECT_EQ(toString(V), "a[0, i] = b[i]\n");
}

} // namespace
