//===- tests/deps_cache_test.cpp - Differential tests of the query cache ---===//
//
// The dependence-query engine layers several accelerations (constraint
// canonicalization, an interval/GCD pre-filter, process-wide emptiness
// memoization, per-point domain caching, analyzer reuse) over the plain
// Fourier–Motzkin path. Every layer is required to be *exact*: with
// acceleration on or bypassed (stats::BypassGuard), every query must return
// the identical answer. These tests enforce that on randomized programs and
// randomized schedule sequences.
//
//===----------------------------------------------------------------------===//

#include <functional>
#include <gtest/gtest.h>
#include <set>
#include <tuple>

#include "frontend/libop.h"
#include "ir/printer.h"
#include "schedule/schedule.h"
#include "support/stats.h"

using namespace ft;

namespace {

struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 2654435761u + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // [Lo, Hi)
    return Lo + static_cast<int64_t>(next() % uint64_t(Hi - Lo));
  }
  bool coin() { return next() & 1; }
};

/// Random programs exercising the query corners: scalar recurrences
/// (carried deps), guarded stores, reductions, shifted windows (distance-1
/// deps), temporaries scoped inside loops (stack-scope filtering).
Func makeRandomProgram(uint64_t Seed) {
  Rng R(Seed);
  const int64_t N = R.range(5, 12);
  const int64_t M = R.range(3, 8);
  FunctionBuilder B("dc" + std::to_string(Seed));
  View A = B.input("a", {makeIntConst(N), makeIntConst(M)});
  View Bv = B.input("b", {makeIntConst(N)});
  View Y = B.output("y", {makeIntConst(N), makeIntConst(M)});
  View Z = B.output("z", {makeIntConst(N)});

  B.loop(
      "i", 0, N,
      [&](Expr I) {
        B.loop("j", 0, M, [&](Expr J) {
          Expr V = A[I][J].load() * makeFloatConst(0.5);
          if (R.coin())
            V = V + Bv[I].load();
          switch (R.range(0, 3)) {
          case 0:
            Y[I][J].assign(V);
            break;
          case 1:
            // Shifted window: distance-1 dependence carried by i.
            Y[I][J].assign(makeFloatConst(0.0));
            B.ifThen(I >= 1, [&] { Y[I][J] += V; });
            break;
          default:
            Y[I][J] += V;
            break;
          }
        });
      },
      "L1");

  B.loop(
      "i", 0, N,
      [&](Expr I) {
        // Loop-scoped temporary: dependences on t across i iterations are
        // killed by stack-scope filtering.
        View T = B.local("t", {});
        T.assign(0.0);
        B.loop("j", 0, M, [&](Expr J) { T += Y[I][J].load(); });
        if (R.coin())
          Z[I].assign(T.load() + Bv[I].load());
        else
          Z[I].assign(T.load());
      },
      "L2");

  return B.build();
}

std::vector<int64_t> allLoops(const Stmt &S) {
  std::vector<int64_t> Out;
  std::function<void(const Stmt &)> Walk = [&](const Stmt &St) {
    if (auto L = dyn_cast<ForNode>(St)) {
      Out.push_back(L->Id);
      return Walk(L->Body);
    }
    if (auto Seq = dyn_cast<StmtSeqNode>(St)) {
      for (const Stmt &Sub : Seq->Stmts)
        Walk(Sub);
      return;
    }
    if (auto D = dyn_cast<VarDefNode>(St))
      return Walk(D->Body);
    if (auto I = dyn_cast<IfNode>(St)) {
      Walk(I->Then);
      if (I->Else)
        Walk(I->Else);
    }
  };
  Walk(S);
  return Out;
}

std::vector<int64_t> topLevelStmts(const Stmt &S) {
  if (auto Seq = dyn_cast<StmtSeqNode>(S)) {
    std::vector<int64_t> Out;
    for (const Stmt &Sub : Seq->Stmts)
      Out.push_back(Sub->Id);
    return Out;
  }
  return {S->Id};
}

/// An ID-free rendering of one found dependence: stable across analyzer
/// instances and across structurally identical ASTs with different node
/// IDs.
using DepSig = std::tuple<std::string, int64_t, int, int, // var, E seq/kind/ph
                          int64_t, int, int,              // L seq/kind/phase
                          int, bool>;                     // type, same-op

DepSig sigOf(const FoundDep &D) {
  return {D.Earlier->Var,
          D.Earlier->Seq,
          static_cast<int>(D.Earlier->Kind),
          D.Earlier->Phase,
          D.Later->Seq,
          static_cast<int>(D.Later->Kind),
          D.Later->Phase,
          static_cast<int>(D.Type),
          D.SameOpReduce};
}

/// Runs every carriedBy and pairwise betweenAtEqualIters query on \p Root
/// with a fresh analyzer and returns the full multiset of answers.
std::multiset<DepSig> allQueries(const Stmt &Root) {
  DepAnalyzer DA(Root);
  std::multiset<DepSig> Out;
  for (int64_t L : allLoops(Root))
    for (const FoundDep &D : DA.carriedBy(L))
      Out.insert(sigOf(D));
  std::vector<int64_t> Top = topLevelStmts(Root);
  for (int64_t A : Top)
    for (int64_t B : Top)
      if (A != B)
        for (const FoundDep &D : DA.betweenAtEqualIters(A, B))
          Out.insert(sigOf(D));
  return Out;
}

/// Applies the same deterministic schedule-request sequence to \p S,
/// recording which requests were accepted.
std::vector<bool> applySchedules(Schedule &S, uint64_t Seed, int Steps) {
  Rng R(Seed * 7919 + 13);
  std::vector<bool> Accepted;
  for (int Step = 0; Step < Steps; ++Step) {
    std::vector<int64_t> Loops = allLoops(S.ast());
    if (Loops.empty())
      break;
    int64_t L = Loops[R.range(0, Loops.size())];
    switch (R.range(0, 6)) {
    case 0:
      Accepted.push_back(S.split(L, R.range(2, 5)).ok());
      break;
    case 1: {
      auto Nest = S.perfectNest(L);
      Accepted.push_back(Nest.size() >= 2 &&
                         S.reorder({Nest[1]->Id, Nest[0]->Id}).ok());
      break;
    }
    case 2:
      Accepted.push_back(S.parallelize(L).ok());
      break;
    case 3:
      Accepted.push_back(S.vectorize(L).ok());
      break;
    case 4: {
      std::vector<int64_t> All = allLoops(S.ast());
      int64_t L2 = All[R.range(0, All.size())];
      Accepted.push_back(L != L2 && S.fuse(L, L2).ok());
      break;
    }
    default: {
      auto Nest = S.perfectNest(L);
      Accepted.push_back(Nest.size() >= 2 &&
                         S.merge(Nest[0]->Id, Nest[1]->Id).ok());
      break;
    }
    }
  }
  return Accepted;
}

class DepsCacheFuzz : public ::testing::TestWithParam<int> {};

// Every query on an unscheduled random program must answer identically
// with the acceleration layers on and bypassed.
TEST_P(DepsCacheFuzz, CachedQueriesMatchBypassedQueries) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  Func F = makeRandomProgram(Seed);

  std::multiset<DepSig> Accelerated = allQueries(F.Body);
  std::multiset<DepSig> Plain;
  {
    stats::BypassGuard G;
    Plain = allQueries(F.Body);
  }
  EXPECT_EQ(Accelerated, Plain) << "seed " << Seed;
}

// An identical schedule-request sequence must be accepted/rejected
// identically with and without acceleration, produce structurally
// identical ASTs, and leave identical dependences behind. This exercises
// analyzer reuse + invalidation across every mutating primitive.
TEST_P(DepsCacheFuzz, ScheduleDecisionsMatchBypassedDecisions) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());

  Schedule SAccel(makeRandomProgram(Seed));
  std::vector<bool> AcceptedAccel = applySchedules(SAccel, Seed, 10);

  Schedule SPlain(makeRandomProgram(Seed));
  std::vector<bool> AcceptedPlain;
  {
    stats::BypassGuard G;
    AcceptedPlain = applySchedules(SPlain, Seed, 10);
  }

  EXPECT_EQ(AcceptedAccel, AcceptedPlain) << "seed " << Seed;
  EXPECT_EQ(toString(SAccel.ast()), toString(SPlain.ast()))
      << "seed " << Seed;
  EXPECT_EQ(allQueries(SAccel.ast()), allQueries(SPlain.ast()))
      << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DepsCacheFuzz, ::testing::Range(1, 33));

// Re-running the same queries must hit the process-wide emptiness memo,
// and hits must not change the answers.
TEST(DepsCache, MemoizationServesRepeatedQueries) {
  Func F = makeRandomProgram(7);
  std::multiset<DepSig> First = allQueries(F.Body);

  stats::reset();
  std::multiset<DepSig> Second = allQueries(F.Body);
  EXPECT_EQ(First, Second);

  stats::Counters &C = stats::counters();
  EXPECT_GT(C.EmptinessQueries.load(), 0u);
  // Every FM-requiring system was already solved in the first pass.
  EXPECT_GT(C.EmptinessCacheHits.load(), 0u);
  EXPECT_EQ(C.EmptinessCacheMisses.load(), 0u);
}

// The per-point domain cache must serve repeated pair-set constructions.
TEST(DepsCache, DomainCacheServesRepeatedPairSets) {
  Func F = makeRandomProgram(11);
  DepAnalyzer DA(F.Body);
  stats::reset();
  for (int64_t L : allLoops(F.Body)) {
    (void)DA.carriedBy(L);
    (void)DA.carriedBy(L);
  }
  stats::Counters &C = stats::counters();
  EXPECT_GT(C.DomainCacheHits.load(), 0u);
}

} // namespace
