//===- tests/autodiff_test.cpp - Reverse-mode AD ---------------------------===//
//
// Every gradient is validated against central finite differences computed
// with the reference interpreter. The Fig. 15 example checks the
// materialize-vs-recompute decision directly.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <gtest/gtest.h>

#include "autodiff/grad.h"
#include "frontend/libop.h"
#include "interp/interp.h"
#include "ir/printer.h"

using namespace ft;

namespace {

struct GradCheck {
  Func F;
  std::map<std::string, std::vector<int64_t>> Shapes;
  std::vector<std::string> Inputs;  ///< Differentiated inputs.
  std::vector<std::string> Outputs; ///< Output params (summed as the loss).
};

void seed(Buffer &B, double Phase) {
  for (int64_t I = 0; I < B.numel(); ++I)
    B.setF(I, 0.5 * std::sin(0.7 * double(I) + Phase) + 0.1);
}

double lossOf(const GradCheck &GC,
              std::map<std::string, Buffer> &Store) {
  std::map<std::string, Buffer *> Args;
  for (auto &[N, B] : Store)
    Args[N] = &B;
  interpret(GC.F, Args);
  double L = 0;
  for (const std::string &O : GC.Outputs)
    for (int64_t I = 0; I < Store.at(O).numel(); ++I)
      L += Store.at(O).getF(I);
  return L;
}

/// Checks grad() against central differences, for both strategies.
void runGradCheck(const GradCheck &GC, TapeStrategy Strategy,
                  double Tol = 2e-2) {
  auto G = grad(GC.F, GC.Inputs, Strategy);
  ASSERT_TRUE(G.ok()) << G.message();

  // Forward+backward with the AD pair.
  std::map<std::string, Buffer> Store;
  double Phase = 0;
  for (const std::string &P : GC.F.Params) {
    Store.emplace(P, Buffer(DataType::Float32, GC.Shapes.at(P)));
    seed(Store.at(P), Phase += 1.0);
  }
  for (const std::string &T : G->Tapes) {
    auto D = findVarDef(G->Forward.Body, T);
    ASSERT_NE(D, nullptr);
    // Evaluate the tape shape with a scratch interpreter trick: shapes are
    // constants or scalar params; here tests use constant shapes.
    std::vector<int64_t> Shape;
    for (const Expr &E : D->Info.Shape) {
      auto IC = dyn_cast<IntConstNode>(E);
      ASSERT_NE(IC, nullptr) << "test tapes must be constant-shaped";
      Shape.push_back(IC->Val);
    }
    Store.emplace(T, Buffer(DataType::Float32, Shape));
  }
  std::map<std::string, Buffer *> FwdArgs;
  for (auto &[N, B] : Store)
    FwdArgs[N] = &B;
  interpret(G->Forward, FwdArgs);

  // Seeds: d(loss)/d(output) == 1.
  for (const auto &[Y, SeedName] : G->SeedNames) {
    Store.emplace(SeedName,
                  Buffer(DataType::Float32, GC.Shapes.at(Y)));
    for (int64_t I = 0; I < Store.at(SeedName).numel(); ++I)
      Store.at(SeedName).setF(I, 1.0);
  }
  for (const auto &[X, GradName] : G->GradNames)
    Store.emplace(GradName, Buffer(DataType::Float32, GC.Shapes.at(X)));

  std::map<std::string, Buffer *> BwdArgs;
  for (const std::string &P : G->Backward.Params)
    BwdArgs[P] = &Store.at(P);
  interpret(G->Backward, BwdArgs);

  // Central differences on a fresh copy.
  const double Eps = 1e-3;
  for (const std::string &X : GC.Inputs) {
    Buffer &GradBuf = Store.at(G->GradNames.at(X));
    for (int64_t I = 0; I < GradBuf.numel(); ++I) {
      std::map<std::string, Buffer> FD;
      double Phase2 = 0;
      for (const std::string &P : GC.F.Params) {
        FD.emplace(P, Buffer(DataType::Float32, GC.Shapes.at(P)));
        seed(FD.at(P), Phase2 += 1.0);
      }
      double Orig = FD.at(X).getF(I);
      FD.at(X).setF(I, Orig + Eps);
      double LPlus = lossOf(GC, FD);
      FD.at(X).setF(I, Orig - Eps);
      double LMinus = lossOf(GC, FD);
      double Numeric = (LPlus - LMinus) / (2 * Eps);
      EXPECT_NEAR(GradBuf.getF(I), Numeric, Tol)
          << "d(loss)/d(" << X << "[" << I << "])";
    }
  }
}

//===--------------------------------------------------------------------===//
// Fig. 15: t = a[i]*b[i]; y[i] = t*c[i]; z[i] = t*d[i].
//===--------------------------------------------------------------------===//

GradCheck buildFig15(int64_t N) {
  FunctionBuilder B("fig15");
  View A = B.input("a", {makeIntConst(N)});
  View Bv = B.input("b", {makeIntConst(N)});
  View C = B.input("c", {makeIntConst(N)});
  View D = B.input("d", {makeIntConst(N)});
  View Y = B.output("y", {makeIntConst(N)});
  View Z = B.output("z", {makeIntConst(N)});
  B.loop("i", 0, N, [&](Expr I) {
    View T = B.local("t", {});
    T.assign(A[I].load() * Bv[I].load());
    Y[I].assign(T.load() * C[I].load());
    Z[I].assign(T.load() * D[I].load());
  });
  GradCheck GC;
  GC.F = B.build();
  GC.Shapes = {{"a", {N}}, {"b", {N}}, {"c", {N}}, {"d", {N}},
               {"y", {N}}, {"z", {N}}};
  GC.Inputs = {"a", "b", "c", "d"};
  GC.Outputs = {"y", "z"};
  return GC;
}

TEST(AutodiffTest, Fig15GradientsCorrectBothStrategies) {
  runGradCheck(buildFig15(5), TapeStrategy::Selective);
  runGradCheck(buildFig15(5), TapeStrategy::All);
}

TEST(AutodiffTest, Fig15SelectiveRecomputesCheapScalar) {
  GradCheck GC = buildFig15(5);
  auto GSel = grad(GC.F, GC.Inputs, TapeStrategy::Selective);
  ASSERT_TRUE(GSel.ok()) << GSel.message();
  // t = a[i] * b[i] is cheap: no tape (Fig. 15(c)).
  EXPECT_TRUE(GSel->Tapes.empty());
  // The recomputation appears in the backward pass.
  EXPECT_NE(toString(GSel->Backward.Body).find("a["), std::string::npos);

  auto GAll = grad(GC.F, GC.Inputs, TapeStrategy::All);
  ASSERT_TRUE(GAll.ok());
  // Materialize-all tapes t into a length-N version vector (Fig. 15(b)).
  ASSERT_EQ(GAll->Tapes.size(), 1u);
  EXPECT_EQ(GAll->Tapes[0], "t.tape");
  auto TapeDef = findVarDef(GAll->Forward.Body, "t.tape");
  ASSERT_NE(TapeDef, nullptr);
  ASSERT_EQ(TapeDef->Info.Shape.size(), 1u);
  EXPECT_EQ(toString(TapeDef->Info.Shape[0]), "5");
}

//===--------------------------------------------------------------------===//
// Unary / binary rules through a deep expression.
//===--------------------------------------------------------------------===//

TEST(AutodiffTest, ScalarMathRules) {
  FunctionBuilder B("rules");
  View X = B.input("x", {makeIntConst(6)});
  View Y = B.output("y", {makeIntConst(6)});
  B.loop("i", 0, 6, [&](Expr I) {
    Expr V = X[I].load();
    Y[I].assign(ft::exp(V) * makeFloatConst(0.25) +
                ft::sigmoid(V) * ft::tanh(V) -
                ft::sqrt(ft::abs(V) + makeFloatConst(1.0)) +
                V / (V * V + makeFloatConst(2.0)));
  });
  GradCheck GC;
  GC.F = B.build();
  GC.Shapes = {{"x", {6}}, {"y", {6}}};
  GC.Inputs = {"x"};
  GC.Outputs = {"y"};
  runGradCheck(GC, TapeStrategy::Selective);
}

TEST(AutodiffTest, MinMaxSelectGradients) {
  FunctionBuilder B("mm");
  View X = B.input("x", {makeIntConst(5)});
  View W = B.input("w", {makeIntConst(5)});
  View Y = B.output("y", {makeIntConst(5)});
  B.loop("i", 0, 5, [&](Expr I) {
    Y[I].assign(ft::max(X[I].load(), W[I].load()) +
                ft::min(X[I].load() * makeFloatConst(2.0), W[I].load()));
  });
  GradCheck GC;
  GC.F = B.build();
  GC.Shapes = {{"x", {5}}, {"w", {5}}, {"y", {5}}};
  GC.Inputs = {"x", "w"};
  GC.Outputs = {"y"};
  runGradCheck(GC, TapeStrategy::Selective);
}

//===--------------------------------------------------------------------===//
// Reductions & softmax.
//===--------------------------------------------------------------------===//

TEST(AutodiffTest, SumReductionGradient) {
  FunctionBuilder B("sum");
  View X = B.input("x", {makeIntConst(4), makeIntConst(3)});
  View Y = B.output("y", {makeIntConst(4)});
  B.loop("i", 0, 4, [&](Expr I) {
    Y[I].assign(0.0);
    B.loop("j", 0, 3, [&](Expr J) {
      Y[I] += X[I][J].load() * X[I][J].load();
    });
  });
  GradCheck GC;
  GC.F = B.build();
  GC.Shapes = {{"x", {4, 3}}, {"y", {4}}};
  GC.Inputs = {"x"};
  GC.Outputs = {"y"};
  runGradCheck(GC, TapeStrategy::Selective);
  runGradCheck(GC, TapeStrategy::All);
}

TEST(AutodiffTest, SoftmaxGradient) {
  FunctionBuilder B("sm");
  View X = B.input("x", {makeIntConst(6)});
  View Y = B.output("y", {makeIntConst(6)});
  libop::softmax(B, X, Y);
  GradCheck GC;
  GC.F = B.build();
  GC.Shapes = {{"x", {6}}, {"y", {6}}};
  GC.Inputs = {"x"};
  GC.Outputs = {"y"};
  runGradCheck(GC, TapeStrategy::Selective);
  runGradCheck(GC, TapeStrategy::All);
}

TEST(AutodiffTest, LongformerRowGradient) {
  // One full Longformer row: dot products + softmax, with the boundary
  // guard and indirect window access.
  const int64_t N = 5, D = 2, W = 1;
  FunctionBuilder B("lf");
  View Q = B.input("Q", {makeIntConst(N), makeIntConst(D)});
  View K = B.input("K", {makeIntConst(N), makeIntConst(D)});
  View Attn = B.output("attn", {makeIntConst(N), makeIntConst(2 * W + 1)});
  B.loop("j", 0, N, [&](Expr J) {
    View Dot = B.local("dot", {makeIntConst(2 * W + 1)});
    libop::zeros(B, Dot);
    B.loop("k", -W, W + 1, [&](Expr Kk) {
      B.ifThen(J + Kk >= 0 && J + Kk < N, [&] {
        B.loop("p", 0, D, [&](Expr P) {
          Dot[Kk + W] += Q[J][P].load() * K[J + Kk][P].load();
        });
      });
    });
    libop::softmax(B, Dot, Attn[J]);
  });
  GradCheck GC;
  GC.F = B.build();
  GC.Shapes = {{"Q", {N, D}}, {"K", {N, D}}, {"attn", {N, 2 * W + 1}}};
  GC.Inputs = {"Q", "K"};
  GC.Outputs = {"attn"};
  runGradCheck(GC, TapeStrategy::Selective, 3e-2);
  runGradCheck(GC, TapeStrategy::All, 3e-2);
}

TEST(AutodiffTest, GemmCallGradient) {
  FunctionBuilder B("mm");
  View A = B.input("A", {makeIntConst(3), makeIntConst(4)});
  View Bv = B.input("B", {makeIntConst(4), makeIntConst(2)});
  View C = B.output("C", {makeIntConst(3), makeIntConst(2)});
  libop::zeros(B, C);
  Func F = B.build();
  // Append a GemmCall by hand (as as_lib would produce).
  auto Wrap = [&](Stmt Body) {
    std::function<Stmt(const Stmt &)> Rec = [&](const Stmt &S) -> Stmt {
      if (auto Def = dyn_cast<VarDefNode>(S)) {
        Stmt NB = Rec(Def->Body);
        Stmt N = makeVarDef(Def->Name, Def->Info, Def->ATy, Def->MTy, NB,
                            Def->Id);
        return N;
      }
      return makeStmtSeq(
          {S, makeGemmCall("A", "B", "C", makeIntConst(3), makeIntConst(2),
                           makeIntConst(4), false, false,
                           DataType::Float32)});
    };
    return Rec(Body);
  };
  F.Body = Wrap(F.Body);
  GradCheck GC;
  GC.F = F;
  GC.Shapes = {{"A", {3, 4}}, {"B", {4, 2}}, {"C", {3, 2}}};
  GC.Inputs = {"A", "B"};
  GC.Outputs = {"C"};
  runGradCheck(GC, TapeStrategy::Selective);
}

//===--------------------------------------------------------------------===//
// Diagnostics.
//===--------------------------------------------------------------------===//

TEST(AutodiffTest, MaxReductionWithoutNoGradRejected) {
  FunctionBuilder B("bad");
  View X = B.input("x", {makeIntConst(4)});
  View Y = B.output("y", {});
  Y.assign(makeFloatConst(-1e30));
  B.loop("i", 0, 4, [&](Expr I) { Y.reduceMax(X[I].load()); });
  auto G = grad(B.build(), {"x"});
  ASSERT_FALSE(G.ok());
  EXPECT_NE(G.message().find("no_grad"), std::string::npos);
}

TEST(AutodiffTest, MultipleStoresRejected) {
  FunctionBuilder B("bad2");
  View X = B.input("x", {makeIntConst(4)});
  View Y = B.output("y", {makeIntConst(4)});
  View T = B.local("t", {});
  B.loop("i", 0, 4, [&](Expr I) {
    T.assign(X[I].load());
    T.assign(T.load() * makeFloatConst(2.0)); // Second store (reads too).
    Y[I].assign(T.load());
  });
  auto G = grad(B.build(), {"x"});
  EXPECT_FALSE(G.ok());
}

TEST(AutodiffTest, UnknownWrtRejected) {
  GradCheck GC = buildFig15(3);
  auto G = grad(GC.F, {"nonexistent"});
  ASSERT_FALSE(G.ok());
  auto G2 = grad(GC.F, {"y"}); // An output, not an input.
  EXPECT_FALSE(G2.ok());
}

} // namespace
