//===- tests/eager_test.cpp - EagerTensor baseline framework ---------------===//
//
// Operator-level correctness and autograd checks for the operator-based
// baseline, each gradient validated against central finite differences —
// the baseline must be *correct* for the Figure-16 comparisons to mean
// anything.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <functional>
#include <gtest/gtest.h>

#include "opframework/eager.h"

using namespace ft::eager;

namespace {

Tensor seeded(std::vector<int64_t> Shape, double Phase,
              bool RequiresGrad = false) {
  int64_t N = 1;
  for (int64_t D : Shape)
    N *= D;
  std::vector<float> V(N);
  for (int64_t I = 0; I < N; ++I)
    V[I] = 0.4f * std::sin(0.7 * double(I) + Phase) + 0.1f;
  return Tensor::fromVec(std::move(Shape), std::move(V), RequiresGrad);
}

/// Finite-difference check of d(sum(Fn(X, ...)))/dX at a few probes.
void gradCheck(const std::function<Tensor(const Tensor &)> &Fn,
               std::vector<int64_t> Shape, double Tol = 5e-2) {
  clearTape();
  Tensor X = seeded(Shape, 1.0, /*RequiresGrad=*/true);
  Tensor L = sumAll(Fn(X));
  backward(L);
  Tensor G = X.grad();

  const float Eps = 1e-2f;
  for (int64_t Probe : {int64_t(0), X.numel() / 2, X.numel() - 1}) {
    auto Eval = [&](float Delta) {
      clearTape();
      Tensor X2 = seeded(Shape, 1.0);
      X2.data()[Probe] += Delta;
      Tensor Y = Fn(X2);
      double S = 0;
      for (int64_t I = 0; I < Y.numel(); ++I)
        S += Y.data()[I];
      return S;
    };
    double Numeric = (Eval(Eps) - Eval(-Eps)) / (2 * Eps);
    EXPECT_NEAR(G.data()[Probe], Numeric, Tol) << "probe " << Probe;
  }
}

TEST(EagerTest, ElementwiseForward) {
  Tensor A = Tensor::fromVec({4}, {1, -2, 3, -4});
  Tensor B = Tensor::fromVec({4}, {5, 6, 7, 8});
  EXPECT_FLOAT_EQ(add(A, B).data()[0], 6);
  EXPECT_FLOAT_EQ(sub(A, B).data()[1], -8);
  EXPECT_FLOAT_EQ(mul(A, B).data()[2], 21);
  EXPECT_FLOAT_EQ(abs(A).data()[3], 4);
  EXPECT_FLOAT_EQ(scale(A, 2).data()[0], 2);
  EXPECT_FLOAT_EQ(relu(A).data()[1], 0);
  EXPECT_NEAR(exp(A).data()[0], std::exp(1.0f), 1e-5);
  EXPECT_NEAR(sigmoid(A).data()[0], 1 / (1 + std::exp(-1.0f)), 1e-6);
  EXPECT_FLOAT_EQ(minEw(A, B).data()[0], 1);
  EXPECT_NEAR(divEw(A, B).data()[0], 0.2f, 1e-6);
  EXPECT_FLOAT_EQ(addScalar(A, 10).data()[1], 8);
}

TEST(EagerTest, ElementwiseGradients) {
  gradCheck([](const Tensor &X) { return mul(X, X); }, {6});
  gradCheck([](const Tensor &X) { return abs(X); }, {6});
  gradCheck([](const Tensor &X) { return exp(X); }, {6});
  gradCheck([](const Tensor &X) { return sigmoid(X); }, {6});
  gradCheck([](const Tensor &X) { return log(addScalar(scale(X, 0.1f),
                                                       2.0f)); },
            {6});
}

TEST(EagerTest, ReductionsAndSoftmax) {
  Tensor A = Tensor::fromVec({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor S0 = sumAxis(A, 0);
  EXPECT_FLOAT_EQ(S0.data()[0], 5);
  EXPECT_FLOAT_EQ(S0.data()[2], 9);
  Tensor S1 = sumAxis(A, 1);
  EXPECT_FLOAT_EQ(S1.data()[0], 6);
  EXPECT_FLOAT_EQ(S1.data()[1], 15);
  EXPECT_FLOAT_EQ(sumAll(A).data()[0], 21);

  Tensor SM = softmaxLast(A);
  for (int Row = 0; Row < 2; ++Row) {
    float Sum = 0;
    for (int C = 0; C < 3; ++C)
      Sum += SM.data()[Row * 3 + C];
    EXPECT_NEAR(Sum, 1.0f, 1e-5);
  }
  gradCheck([](const Tensor &X) { return softmaxLast(mul(X, X)); }, {2, 3},
            1e-2);
  gradCheck([](const Tensor &X) { return sumAxis(mul(X, X), 1); }, {3, 4});
}

TEST(EagerTest, MatmulAndMv) {
  Tensor A = Tensor::fromVec({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor B = Tensor::fromVec({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor C = matmul(A, B);
  EXPECT_FLOAT_EQ(C.data()[0], 58);
  EXPECT_FLOAT_EQ(C.data()[3], 154);
  Tensor V = Tensor::fromVec({3}, {1, 0, -1});
  Tensor MV = mv(A, V);
  EXPECT_FLOAT_EQ(MV.data()[0], -2);
  EXPECT_FLOAT_EQ(MV.data()[1], -2);

  gradCheck(
      [&](const Tensor &X) {
        Tensor B2 = Tensor::fromVec({3, 2}, {7, 8, 9, 10, 11, 12});
        return matmul(X, B2);
      },
      {2, 3});
}

TEST(EagerTest, GatherScatterRoll) {
  Tensor A = Tensor::fromVec({3, 2}, {1, 2, 3, 4, 5, 6});
  IndexTensor Idx = IndexTensor::fromVec({2}, {2, 0});
  Tensor G = indexSelect0(A, Idx);
  EXPECT_FLOAT_EQ(G.data()[0], 5);
  EXPECT_FLOAT_EQ(G.data()[2], 1);

  Tensor SA = scatterAdd0(G, Idx, 3);
  EXPECT_FLOAT_EQ(SA.data()[4], 5); // Row 2 gets row 0 of G back.
  EXPECT_FLOAT_EQ(SA.data()[0], 1);
  EXPECT_FLOAT_EQ(SA.data()[2], 0); // Row 1 untouched.

  // Roll along axis 1 of a [1, 3, 2] tensor.
  Tensor T3 = Tensor::fromVec({1, 3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor R = roll1(T3, 1);
  EXPECT_FLOAT_EQ(R.data()[0], 3); // Position 0 now holds element 1.
  EXPECT_FLOAT_EQ(R.data()[4], 1); // Position 2 wraps to element 0.

  gradCheck(
      [&](const Tensor &X) { return indexSelect0(X, Idx); }, {3, 2});
  gradCheck([&](const Tensor &X) { return roll1(X, 1); }, {1, 3, 2});
  gradCheck(
      [&](const Tensor &X) { return scatterAdd0(X, Idx, 3); }, {2, 2});
}

TEST(EagerTest, SlidingWindowsAndBmv) {
  Tensor A = Tensor::fromVec({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor W = slidingWindows(A, 1); // [3, 3, 2]
  // Row 0, offset -1 is padding.
  EXPECT_FLOAT_EQ(W.data()[0], 0);
  EXPECT_FLOAT_EQ(W.data()[2], 1); // Offset 0 = row 0.
  EXPECT_FLOAT_EQ(W.data()[4], 3); // Offset +1 = row 1.

  Tensor Q = Tensor::fromVec({3, 2}, {1, 1, 1, 1, 1, 1});
  Tensor D = bmvDot(W, Q); // [3, 3]
  EXPECT_FLOAT_EQ(D.data()[0], 0);
  EXPECT_FLOAT_EQ(D.data()[1], 3);  // <(1,2),(1,1)>
  EXPECT_FLOAT_EQ(D.data()[2], 7);  // <(3,4),(1,1)>

  Tensor P = Tensor::fromVec({3, 3}, {0, 1, 0, 0, 0, 1, 1, 0, 0});
  Tensor Y = bmvWeight(P, W);
  EXPECT_FLOAT_EQ(Y.data()[0], 1); // Row 0 selects offset 0 = row 0.

  gradCheck([&](const Tensor &X) { return slidingWindows(X, 1); }, {3, 2});
  gradCheck(
      [&](const Tensor &X) {
        Tensor Q2 = Tensor::fromVec({3, 2}, {1, 1, 1, 1, 1, 1});
        return bmvDot(slidingWindows(X, 1), Q2);
      },
      {3, 2});
}

TEST(EagerTest, BroadcastOps) {
  Tensor A = Tensor::fromVec({2}, {10, 20});
  Tensor B = Tensor::fromVec({3}, {1, 2, 3});
  Tensor O = outerSub(A, B);
  EXPECT_FLOAT_EQ(O.data()[0], 9);
  EXPECT_FLOAT_EQ(O.data()[5], 17);

  Tensor M = Tensor::fromVec({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor MC = mulCols(M, B);
  EXPECT_FLOAT_EQ(MC.data()[1], 4);
  Tensor MR = mulRows(M, A);
  EXPECT_FLOAT_EQ(MR.data()[3], 80);

  gradCheck(
      [&](const Tensor &X) {
        Tensor B2 = Tensor::fromVec({3}, {1, 2, 3});
        return outerSub(X, B2);
      },
      {2});
  gradCheck(
      [&](const Tensor &X) {
        Tensor B2 = Tensor::fromVec({3}, {1, 2, 3});
        return mulCols(X, B2);
      },
      {2, 3});
}

TEST(EagerTest, MaskedFillStopsGradThroughMask) {
  Tensor Mask = Tensor::fromVec({4}, {1, 0, 1, 0});
  clearTape();
  Tensor X = seeded({4}, 2.0, true);
  Tensor Y = maskedFill(X, Mask, -100.0f);
  EXPECT_FLOAT_EQ(Y.data()[1], -100.0f);
  backward(sumAll(Y));
  Tensor G = X.grad();
  EXPECT_FLOAT_EQ(G.data()[0], 1);
  EXPECT_FLOAT_EQ(G.data()[1], 0); // Masked positions get no gradient.
}

TEST(EagerTest, StatsCounters) {
  resetStats();
  clearTape();
  Tensor A = seeded({100}, 0.5);
  Tensor B = seeded({100}, 1.5);
  resetStats();
  Tensor C = add(A, B);
  (void)C;
  EXPECT_EQ(stats().KernelLaunches, 1);
  EXPECT_EQ(stats().BytesRead, 800);
  EXPECT_EQ(stats().BytesWritten, 400);
  EXPECT_EQ(stats().Flops, 100);
  EXPECT_EQ(stats().BytesAllocated, 400);
}

TEST(EagerTest, TapeAccumulatesAcrossUses) {
  // X used twice: gradients must sum.
  clearTape();
  Tensor X = seeded({4}, 0.0, true);
  Tensor Y = add(mul(X, X), scale(X, 3.0f)); // d/dx = 2x + 3
  backward(sumAll(Y));
  Tensor G = X.grad();
  for (int64_t I = 0; I < 4; ++I)
    EXPECT_NEAR(G.data()[I], 2 * X.data()[I] + 3, 1e-5);
}

} // namespace
