//===- tests/simd_test.cpp - Explicit-width SIMD lowering ------------------===//
//
// End-to-end checks of the proven vectorize(LoopId, Width) pipeline:
//  - emitted source carries `omp simd simdlen(W)` + `__restrict__` params,
//    while the legacy one-argument form stays on the `ivdep` hint;
//  - scalar remainder loops make non-multiple extents exact (differential
//    against the interpreter);
//  - single-accumulator reductions lower to a privatized `reduction(...)`
//    clause and still match the interpreter;
//  - a kernel compiled with proven no-aliasing rejects aliased arguments
//    at run time;
//  - a width/extent fuzz sweep stays bit-close to the interpreter.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "codegen/jit.h"
#include "frontend/libop.h"
#include "interp/interp.h"
#include "schedule/schedule.h"

using namespace ft;

namespace {

Expr ic(int64_t V) { return makeIntConst(V); }

void seed(Buffer &B, double Phase) {
  for (int64_t I = 0; I < B.numel(); ++I)
    B.setF(I, std::sin(0.41 * double(I) + Phase));
}

/// y[i] = 2*x[i] + y[i] over [0, N), with the loop id captured.
struct Axpy {
  Func F;
  int64_t Loop = -1;
};

Axpy buildAxpy(int64_t N) {
  FunctionBuilder B("axpy");
  View X = B.input("x", {ic(N)});
  View Y = B.inout("y", {ic(N)});
  Axpy A;
  A.Loop = B.loop("i", 0, N, [&](Expr I) {
    Y[I].assign(X[I].load() * makeFloatConst(2.0) + Y[I].load());
  });
  A.F = B.build();
  return A;
}

/// y[0] += x[i] * w[i] over [0, N): the single-accumulator dot pattern.
struct Dot {
  Func F;
  int64_t Loop = -1;
};

Dot buildDot(int64_t N) {
  FunctionBuilder B("dot");
  View X = B.input("x", {ic(N)});
  View W = B.input("w", {ic(N)});
  View Y = B.output("y", {ic(1)});
  Dot D;
  D.Loop = B.loop("i", 0, N,
                  [&](Expr I) { Y[ic(0)] += X[I].load() * W[I].load(); });
  D.F = B.build();
  return D;
}

/// Interprets and JITs \p F on identically-seeded buffers and compares the
/// named outputs.
void expectJitMatchesInterp(const Func &F,
                            const std::vector<std::string> &Outputs,
                            double Tol = 1e-5) {
  std::map<std::string, Buffer> SI, SJ;
  std::map<std::string, Buffer *> AI, AJ;
  double Phase = 0;
  for (const std::string &P : F.Params) {
    Phase += 1.0;
    auto D = findVarDef(F.Body, P);
    ASSERT_TRUE(D != nullptr) << P;
    std::vector<int64_t> Shape;
    for (const Expr &E : D->Info.Shape)
      Shape.push_back(cast<IntConstNode>(E)->Val);
    SI.emplace(P, Buffer(DataType::Float32, Shape));
    seed(SI.at(P), Phase);
    SJ.emplace(P, Buffer(DataType::Float32, Shape));
    seed(SJ.at(P), Phase);
    AI[P] = &SI.at(P);
    AJ[P] = &SJ.at(P);
  }
  interpret(F, AI);
  auto K = Kernel::compile(F, "-O2");
  ASSERT_TRUE(K.ok()) << K.message();
  Status RunSt = K->run(AJ);
  ASSERT_TRUE(RunSt.ok()) << RunSt.message();
  for (const std::string &O : Outputs) {
    const Buffer &BI = SI.at(O), &BJ = SJ.at(O);
    for (int64_t I = 0; I < BI.numel(); ++I)
      EXPECT_NEAR(BI.as<float>()[I], BJ.as<float>()[I], Tol)
          << O << "[" << I << "]";
  }
}

} // namespace

TEST(SimdTest, WidthFormEmitsOmpSimdAndRestrict) {
  Axpy A = buildAxpy(64);
  Schedule S(A.F);
  ASSERT_TRUE(S.vectorize(A.Loop, 8).ok());
  std::string Src = generateCpp(S.func());
  EXPECT_NE(Src.find("omp simd"), std::string::npos);
  EXPECT_NE(Src.find("simdlen(8)"), std::string::npos);
  EXPECT_NE(Src.find("__restrict__"), std::string::npos);
  EXPECT_NE(Src.find("aligned("), std::string::npos);
  EXPECT_EQ(Src.find("ivdep"), std::string::npos);
}

TEST(SimdTest, LegacyHintFormStaysOnIvdep) {
  Axpy A = buildAxpy(64);
  Schedule S(A.F);
  ASSERT_TRUE(S.vectorize(A.Loop).ok());
  std::string Src = generateCpp(S.func());
  EXPECT_NE(Src.find("ivdep"), std::string::npos);
  EXPECT_EQ(Src.find("omp simd"), std::string::npos);
  EXPECT_EQ(Src.find("__restrict__"), std::string::npos);
}

TEST(SimdTest, ScalarTailHandlesNonMultipleExtent) {
  // 13 % 4 != 0: the main loop covers 12 lanes, the scalar tail the 13th.
  Axpy A = buildAxpy(13);
  Schedule S(A.F);
  ASSERT_TRUE(S.vectorize(A.Loop, 4).ok());
  expectJitMatchesInterp(S.func(), {"y"});
}

TEST(SimdTest, ReductionLowersWithReductionClause) {
  Dot D = buildDot(37);
  Schedule S(D.F);
  ASSERT_TRUE(S.vectorize(D.Loop, 8).ok());
  std::string Src = generateCpp(S.func());
  EXPECT_NE(Src.find("reduction(+:"), std::string::npos);
  // Reassociated float sum over 37 elements: loosen slightly from exact.
  expectJitMatchesInterp(S.func(), {"y"}, 1e-4);
}

TEST(SimdTest, AliasedArgumentsRejectedAtRunTime) {
  Axpy A = buildAxpy(16);
  Schedule S(A.F);
  ASSERT_TRUE(S.vectorize(A.Loop, 8).ok());
  auto K = Kernel::compile(S.func(), "-O2");
  ASSERT_TRUE(K.ok()) << K.message();
  // One buffer bound to both x (read) and y (written) violates the
  // __restrict__ contract the SIMD proof relies on.
  Buffer B(DataType::Float32, {16});
  seed(B, 1.0);
  Status St = K->run({{"x", &B}, {"y", &B}});
  ASSERT_FALSE(St.ok());
  EXPECT_NE(St.message().find("alias"), std::string::npos);

  // Distinct buffers are fine on the very same kernel.
  Buffer X(DataType::Float32, {16}), Y(DataType::Float32, {16});
  seed(X, 1.0);
  seed(Y, 2.0);
  EXPECT_TRUE(K->run({{"x", &X}, {"y", &Y}}).ok());
}

TEST(SimdTest, LegacyKernelToleratesAliasedArguments) {
  // Without the SIMD proof there is no no-aliasing contract to enforce.
  Axpy A = buildAxpy(16);
  auto K = Kernel::compile(A.F, "-O2");
  ASSERT_TRUE(K.ok()) << K.message();
  Buffer B(DataType::Float32, {16});
  seed(B, 1.0);
  EXPECT_TRUE(K->run({{"x", &B}, {"y", &B}}).ok());
}

TEST(SimdTest, WidthExtentFuzzMatchesInterpreter) {
  for (int64_t N : {5, 16, 23, 40}) {
    for (int W : {2, 4, 8, 16}) {
      {
        Axpy A = buildAxpy(N);
        Schedule S(A.F);
        ASSERT_TRUE(S.vectorize(A.Loop, W).ok()) << "N=" << N << " W=" << W;
        expectJitMatchesInterp(S.func(), {"y"});
      }
      {
        Dot D = buildDot(N);
        Schedule S(D.F);
        ASSERT_TRUE(S.vectorize(D.Loop, W).ok()) << "N=" << N << " W=" << W;
        expectJitMatchesInterp(S.func(), {"y"}, 1e-4);
      }
    }
  }
}
