//===- tests/pass2_test.cpp - scalar_prop & shrink_var ----------------------===//

#include <gtest/gtest.h>

#include "frontend/libop.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "pass/scalar_prop.h"
#include "pass/shrink_var.h"
#include "pass/simplify.h"

using namespace ft;

namespace {

Expr ic(int64_t V) { return makeIntConst(V); }

std::vector<float> runF(const Func &F,
                        const std::map<std::string,
                                       std::vector<int64_t>> &Shapes,
                        const std::vector<std::string> &Outputs) {
  std::map<std::string, Buffer> Store;
  std::map<std::string, Buffer *> Args;
  int Phase = 0;
  for (const std::string &P : F.Params) {
    Store.emplace(P, Buffer(DataType::Float32, Shapes.at(P)));
    Buffer &B = Store.at(P);
    for (int64_t I = 0; I < B.numel(); ++I)
      B.setF(I, 0.1 * double(I % 17) + 0.01 * ++Phase);
    Args[P] = &Store.at(P);
  }
  interpret(F, Args);
  std::vector<float> Out;
  for (const std::string &O : Outputs) {
    const Buffer &B = Store.at(O);
    Out.insert(Out.end(), B.as<float>(), B.as<float>() + B.numel());
  }
  return Out;
}

TEST(ScalarPropTest, FoldsSingleUseTemporary) {
  // var d: { d = a[i] - b[i]; y[i] = abs(d) }  ->  y[i] = abs(a[i]-b[i]).
  FunctionBuilder B("f");
  View A = B.input("a", {ic(8)});
  View Bv = B.input("b", {ic(8)});
  View Y = B.output("y", {ic(8)});
  B.loop("i", 0, 8, [&](Expr I) {
    View D = B.local("d", {});
    D.assign(A[I].load() - Bv[I].load());
    Y[I].assign(ft::abs(D.load()));
  });
  Func F = B.build();
  Stmt Out = propagateScalars(F.Body);
  std::string P = toString(Out);
  EXPECT_EQ(P.find("var d"), std::string::npos) << P;
  EXPECT_NE(P.find("abs((a["), std::string::npos) << P;

  Func G = F;
  G.Body = Out;
  std::vector<float> Before = runF(F, {{"a", {8}}, {"b", {8}}, {"y", {8}}},
                                   {"y"});
  std::vector<float> After = runF(G, {{"a", {8}}, {"b", {8}}, {"y", {8}}},
                                  {"y"});
  for (size_t I = 0; I < Before.size(); ++I)
    EXPECT_FLOAT_EQ(Before[I], After[I]);
}

TEST(ScalarPropTest, KeepsMultiUseTemporary) {
  // t used twice: must stay (recomputation policy is AD's, not this pass).
  FunctionBuilder B("f");
  View A = B.input("a", {ic(4)});
  View Y = B.output("y", {ic(4)});
  View Z = B.output("z", {ic(4)});
  B.loop("i", 0, 4, [&](Expr I) {
    View T = B.local("t", {});
    T.assign(A[I].load() * makeFloatConst(2.0));
    Y[I].assign(T.load());
    Z[I].assign(T.load() + makeFloatConst(1.0));
  });
  Func F = B.build();
  std::string P = toString(propagateScalars(F.Body));
  EXPECT_NE(P.find("var t"), std::string::npos);
}

TEST(ScalarPropTest, KeepsWhenOperandWrittenInBetween) {
  // t = y[0]; y[0] = 5; z = t  -- substitution would read the new y[0].
  FunctionBuilder B("f");
  View Y = B.inout("y", {ic(2)});
  View Z = B.output("z", {});
  View T = B.local("t", {});
  T.assign(Y[0].load());
  Y[0].assign(5.0);
  Z.assign(T.load());
  Func F = B.build();
  std::string P = toString(propagateScalars(F.Body));
  EXPECT_NE(P.find("var t"), std::string::npos) << P;
  // And semantics stay correct.
  Func G = F;
  G.Body = propagateScalars(F.Body);
  EXPECT_EQ(runF(F, {{"y", {2}}, {"z", {}}}, {"z"}),
            runF(G, {{"y", {2}}, {"z", {}}}, {"z"}));
}

TEST(ScalarPropTest, KeepsStoreInsideLoop) {
  // The store is per-iteration; the read is after the loop: not a single
  // evaluation, must not propagate.
  FunctionBuilder B("f");
  View A = B.input("a", {ic(4)});
  View Y = B.output("y", {});
  View T = B.local("t", {});
  B.loop("i", 0, 4, [&](Expr I) { T.assign(A[I].load()); });
  Y.assign(T.load());
  Func F = B.build();
  std::string P = toString(propagateScalars(F.Body));
  EXPECT_NE(P.find("var t"), std::string::npos);
}

TEST(ScalarPropTest, KeepsExpensiveRhsOutOfDeeperLoop) {
  // w = exp(a[i]); loop k: y[i,k] = w * b[k]. Folding would re-evaluate
  // the exp once per k — the segment-softmax weight idiom. Must keep.
  FunctionBuilder B("f");
  View A = B.input("a", {ic(4)});
  View Bv = B.input("b", {ic(8)});
  View Y = B.output("y", {ic(4), ic(8)});
  B.loop("i", 0, 4, [&](Expr I) {
    View W = B.local("w", {});
    W.assign(ft::exp(A[I].load()));
    B.loop("k", 0, 8,
           [&](Expr K) { Y[I][K].assign(W.load() * Bv[K].load()); });
  });
  Func F = B.build();
  std::string P = toString(propagateScalars(F.Body));
  EXPECT_NE(P.find("var w"), std::string::npos) << P;
}

TEST(ScalarPropTest, FoldsCheapRhsIntoDeeperLoop) {
  // d = a[i] (a bare load) read inside the k loop: re-reading a[i] costs
  // the same as reading d, so the fold is still profitable.
  FunctionBuilder B("f");
  View A = B.input("a", {ic(4)});
  View Y = B.output("y", {ic(4), ic(8)});
  B.loop("i", 0, 4, [&](Expr I) {
    View D = B.local("d", {});
    D.assign(A[I].load());
    B.loop("k", 0, 8, [&](Expr K) { Y[I][K].assign(D.load()); });
  });
  Func F = B.build();
  std::string P = toString(propagateScalars(F.Body));
  EXPECT_EQ(P.find("var d"), std::string::npos) << P;
}

TEST(ShrinkVarTest, ShrinksOversizedBuffer) {
  // t declared [64] but only t[0..8) used.
  FunctionBuilder B("f");
  View A = B.input("a", {ic(8)});
  View Y = B.output("y", {ic(8)});
  View T = B.local("t", {ic(64)});
  B.loop("i", 0, 8, [&](Expr I) { T[I].assign(A[I].load() * 2); });
  B.loop("i", 0, 8, [&](Expr I) { Y[I].assign(T[I].load()); });
  Func F = B.build();
  Stmt Out = shrinkVars(F.Body);
  auto D = findVarDef(Out, "t");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(toString(D->Info.Shape[0]), "8");

  Func G = F;
  G.Body = Out;
  EXPECT_EQ(runF(F, {{"a", {8}}, {"y", {8}}}, {"y"}),
            runF(G, {{"a", {8}}, {"y", {8}}}, {"y"}));
}

TEST(ShrinkVarTest, ShrinksOffsetWindowToZeroBase) {
  // Only t[16..24) used: shrink to [8] with remapped indices.
  FunctionBuilder B("f");
  View A = B.input("a", {ic(8)});
  View Y = B.output("y", {ic(8)});
  View T = B.local("t", {ic(64)});
  B.loop("i", 0, 8, [&](Expr I) { T[I + 16].assign(A[I].load()); });
  B.loop("i", 0, 8, [&](Expr I) { Y[I].assign(T[I + 16].load()); });
  Func F = B.build();
  Stmt Out = shrinkVars(F.Body);
  auto D = findVarDef(Out, "t");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(toString(D->Info.Shape[0]), "8");
  std::string P = toString(Out);
  EXPECT_EQ(P.find("t[(i + 16)]"), std::string::npos) << P;

  Func G = F;
  G.Body = Out;
  EXPECT_EQ(runF(F, {{"a", {8}}, {"y", {8}}}, {"y"}),
            runF(G, {{"a", {8}}, {"y", {8}}}, {"y"}));
}

TEST(ShrinkVarTest, LeavesTightAndIndirectBuffersAlone) {
  // Tight buffer: unchanged.
  {
    FunctionBuilder B("f");
    View A = B.input("a", {ic(8)});
    View Y = B.output("y", {ic(8)});
    View T = B.local("t", {ic(8)});
    B.loop("i", 0, 8, [&](Expr I) { T[I].assign(A[I].load()); });
    B.loop("i", 0, 8, [&](Expr I) { Y[I].assign(T[I].load()); });
    Func F = B.build();
    Stmt Out = shrinkVars(F.Body);
    EXPECT_EQ(toString(findVarDef(Out, "t")->Info.Shape[0]), "8");
  }
  // Indirect indexing: cannot bound, unchanged.
  {
    FunctionBuilder B("g");
    View A = B.input("a", {ic(8)});
    View Idx = B.input("idx", {ic(8)}, DataType::Int64);
    View Y = B.output("y", {ic(8)});
    View T = B.local("t", {ic(64)});
    B.loop("i", 0, 8,
           [&](Expr I) { T[Idx[I].load()].assign(A[I].load()); });
    B.loop("i", 0, 8,
           [&](Expr I) { Y[I].assign(T[Idx[I].load()].load()); });
    Func F = B.build();
    Stmt Out = shrinkVars(F.Body);
    EXPECT_EQ(toString(findVarDef(Out, "t")->Info.Shape[0]), "64");
  }
}

TEST(ShrinkVarTest, PerInstantiationWindowUsesOuterIterator) {
  // Inside loop i, t holds a window a[i..i+4): shape shrinks from 64 to 4
  // even though the lower bound references i.
  FunctionBuilder B("f");
  View A = B.input("a", {ic(16)});
  View Y = B.output("y", {ic(12)});
  B.loop("i", 0, 12, [&](Expr I) {
    View T = B.local("t", {ic(64)});
    B.loop("j", 0, 4, [&](Expr J) { T[I + J].assign(A[I + J].load()); });
    View Acc = B.local("acc", {});
    Acc.assign(0.0);
    B.loop("j", 0, 4, [&](Expr J) { Acc += T[I + J].load(); });
    Y[I].assign(Acc.load());
  });
  Func F = B.build();
  Stmt Out = shrinkVars(F.Body);
  auto D = findVarDef(Out, "t");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(toString(D->Info.Shape[0]), "4") << toString(Out);

  Func G = F;
  G.Body = Out;
  EXPECT_EQ(runF(F, {{"a", {16}}, {"y", {12}}}, {"y"}),
            runF(G, {{"a", {16}}, {"y", {12}}}, {"y"}));
}

} // namespace
