//===- tests/analysis_test.cpp - Access collection & dependences ----------===//
//
// The dependence cases here mirror the paper's Fig. 11 (distance vectors),
// Fig. 12 (reorder legality), and Fig. 13 (parallelize legality).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "analysis/bounds.h"
#include "analysis/deps.h"
#include "ir/printer.h"

using namespace ft;

namespace {

Expr ld(const std::string &V, std::vector<Expr> I,
        DataType D = DataType::Float32) {
  return makeLoad(V, std::move(I), D);
}

Expr iv(const std::string &N) { return makeVar(N); }
Expr ic(int64_t V) { return makeIntConst(V); }

/// Wraps a statement in VarDefs for the named tensors (1-D, extent n).
Stmt withDefs(Stmt S, std::vector<std::string> Tensors, Expr N) {
  for (const std::string &T : Tensors)
    S = makeVarDef(T, TensorInfo{{N}, DataType::Float32}, AccessType::InOut,
                   MemType::CPU, S);
  return makeVarDef("n", TensorInfo{{}, DataType::Int64}, AccessType::Input,
                    MemType::CPU, S);
}

TEST(AccessTest, CollectsKindsAndContext) {
  // for i in 0:n: a[i] = b[i+1] * 2
  Expr N = ld("n", {}, DataType::Int64);
  Stmt Body =
      makeStore("a", {iv("i")}, makeMul(ld("b", {makeAdd(iv("i"), ic(1))}),
                                        ic(2)));
  Stmt Loop = makeFor("i", ic(0), N, ForProperty{}, Body);
  Stmt Root = withDefs(Loop, {"a", "b"}, N);

  AccessCollection AC = collectAccesses(Root);
  int Reads = 0, Writes = 0;
  for (const AccessPoint &P : AC.Points) {
    if (P.Var == "b") {
      EXPECT_EQ(P.Kind, AccessKind::Read);
      ASSERT_EQ(P.Loops.size(), 1u);
      EXPECT_EQ(P.Loops[0].Iter, "i");
      ++Reads;
    }
    if (P.Var == "a") {
      EXPECT_EQ(P.Kind, AccessKind::Write);
      EXPECT_EQ(P.Phase, 1);
      ++Writes;
    }
  }
  EXPECT_EQ(Reads, 1);
  EXPECT_EQ(Writes, 1);
  EXPECT_TRUE(AC.isParam("n"));
  EXPECT_FALSE(AC.isParam("a"));
}

TEST(AccessTest, ScopeDepthTracksVarDefPosition) {
  // for i: var t: ... : t = 0  -> t's ScopeDepth == 1, a's == 0.
  Stmt Inner = makeStore("t", {}, ic(0));
  Stmt Def = makeVarDef("t", TensorInfo{{}, DataType::Float32},
                        AccessType::Cache, MemType::CPU, Inner);
  Stmt Loop = makeFor("i", ic(0), ic(10), ForProperty{}, Def);
  AccessCollection AC = collectAccesses(Loop);
  ASSERT_EQ(AC.Points.size(), 1u);
  EXPECT_EQ(AC.Points[0].Var, "t");
  EXPECT_EQ(AC.Points[0].ScopeDepth, 1);
}

//===--------------------------------------------------------------------===//
// Fig. 13: parallelize legality via carriedBy.
//===--------------------------------------------------------------------===//

TEST(DepsTest, Fig13aElementwiseNotCarried) {
  // for i: a[i] = b[i] + 1  -- no loop-carried dependence.
  Expr N = ld("n", {}, DataType::Int64);
  Stmt Loop = makeFor("i", ic(0), N, ForProperty{},
                      makeStore("a", {iv("i")}, makeAdd(ld("b", {iv("i")}),
                                                        ic(1))));
  Stmt Root = withDefs(Loop, {"a", "b"}, N);
  DepAnalyzer DA(Root);
  EXPECT_TRUE(DA.carriedBy(Loop->Id).empty());
}

TEST(DepsTest, Fig13bScalarRecurrenceCarried) {
  // for i: a = a * 2 + b[i]  -- carried dependence on scalar a.
  Expr N = ld("n", {}, DataType::Int64);
  Stmt Loop = makeFor(
      "i", ic(0), N, ForProperty{},
      makeStore("a", {},
                makeAdd(makeMul(ld("a", {}), ic(2)), ld("b", {iv("i")}))));
  Stmt Root = withDefs(Loop, {"b"}, N);
  Stmt WithA = makeVarDef("a", TensorInfo{{}, DataType::Float32},
                          AccessType::InOut, MemType::CPU, Root);
  DepAnalyzer DA(WithA);
  auto Deps = DA.carriedBy(Loop->Id);
  EXPECT_FALSE(Deps.empty());
  bool HasRAW = false;
  for (const FoundDep &D : Deps)
    HasRAW |= D.Type == DepType::RAW;
  EXPECT_TRUE(HasRAW);
}

TEST(DepsTest, Fig13dReductionCarriedButSameOpReduce) {
  // for i: a += b[i]  -- carried, but a same-op reduce pair.
  Expr N = ld("n", {}, DataType::Int64);
  Stmt Loop = makeFor("i", ic(0), N, ForProperty{},
                      makeReduceTo("a", {}, ReduceOpKind::Add,
                                   ld("b", {iv("i")})));
  Stmt Root = makeVarDef("a", TensorInfo{{}, DataType::Float32},
                         AccessType::Output, MemType::CPU,
                         withDefs(Loop, {"b"}, N));
  DepAnalyzer DA(Root);
  auto Deps = DA.carriedBy(Loop->Id);
  ASSERT_FALSE(Deps.empty());
  for (const FoundDep &D : Deps)
    EXPECT_TRUE(D.SameOpReduce);
}

TEST(DepsTest, Fig13eIndirectReductionConservativelyCarried) {
  // for i: a[idx[i]] += b[i] -- indirect index: may-dependence kept, and it
  // is a same-op reduce pair (parallelizable with atomics).
  Expr N = ld("n", {}, DataType::Int64);
  Stmt Loop = makeFor(
      "i", ic(0), N, ForProperty{},
      makeReduceTo("a", {ld("idx", {iv("i")}, DataType::Int64)},
                   ReduceOpKind::Add, ld("b", {iv("i")})));
  Stmt Root = withDefs(Loop, {"a", "b"}, N);
  Root = makeVarDef("idx", TensorInfo{{N}, DataType::Int64},
                    AccessType::Input, MemType::CPU, Root);
  DepAnalyzer DA(Root);
  auto Deps = DA.carriedBy(Loop->Id);
  ASSERT_FALSE(Deps.empty());
  for (const FoundDep &D : Deps)
    if (D.Earlier->Var == "a")
      EXPECT_TRUE(D.SameOpReduce);
}

TEST(DepsTest, DistinctColumnsIndependent) {
  // for i: { a[i, 0] = ..; a[i, 1] = .. } -- no dependence between the two
  // stores (different second index), carried or otherwise.
  Expr N = ld("n", {}, DataType::Int64);
  Stmt S0 = makeStore("a", {iv("i"), ic(0)}, ic(1));
  Stmt S1 = makeStore("a", {iv("i"), ic(1)}, ic(2));
  Stmt Loop = makeFor("i", ic(0), N, ForProperty{},
                      makeStmtSeq({S0, S1}));
  Stmt Root = makeVarDef("a", TensorInfo{{N, ic(2)}, DataType::Float32},
                         AccessType::Output, MemType::CPU, Loop);
  Root = makeVarDef("n", TensorInfo{{}, DataType::Int64}, AccessType::Input,
                    MemType::CPU, Root);
  DepAnalyzer DA(Root);
  EXPECT_TRUE(DA.carriedBy(Loop->Id).empty());
  EXPECT_TRUE(DA.betweenAtEqualIters(S0->Id, S1->Id).empty());
}

//===--------------------------------------------------------------------===//
// Fig. 11 / 12: direction constraints through mayDepend.
//===--------------------------------------------------------------------===//

struct Fig11Fixture {
  Stmt Root, LoopI, LoopJ, Assign;
  const AccessPoint *Write = nullptr;
  const AccessPoint *Read2 = nullptr; // a[i-1, j+1]
  DepAnalyzer *DA = nullptr;

  // for i in 1:N-1: for j in 1:M-1:
  //   a[i+1, j] = a[i-1, j+1] + a[i-1, j-1]   (reads (2), (3); write (1))
  void build() {
    Expr N = ld("N", {}, DataType::Int64), M = ld("M", {}, DataType::Int64);
    Expr I = iv("i"), J = iv("j");
    Assign = makeStore(
        "a", {makeAdd(I, ic(1)), J},
        makeAdd(ld("a", {makeSub(I, ic(1)), makeAdd(J, ic(1))}),
                ld("a", {makeSub(I, ic(1)), makeSub(J, ic(1))})));
    LoopJ = makeFor("j", ic(1), makeSub(M, ic(1)), ForProperty{}, Assign);
    LoopI = makeFor("i", ic(1), makeSub(N, ic(1)), ForProperty{}, LoopJ);
    Root = makeVarDef("a", TensorInfo{{N, M}, DataType::Float32},
                      AccessType::InOut, MemType::CPU, LoopI);
    Root = makeVarDef("N", TensorInfo{{}, DataType::Int64},
                      AccessType::Input, MemType::CPU, Root);
    Root = makeVarDef("M", TensorInfo{{}, DataType::Int64},
                      AccessType::Input, MemType::CPU, Root);
  }
};

TEST(DepsTest, Fig11DirectionVectors) {
  Fig11Fixture F;
  F.build();
  DepAnalyzer DA(F.Root);
  const AccessPoint *W = nullptr, *R1 = nullptr;
  for (const AccessPoint &P : DA.accesses().Points) {
    if (P.Var != "a")
      continue;
    if (P.Kind == AccessKind::Write)
      W = &P;
    else if (toString(P.Indices[1]) == "(j + 1)")
      R1 = &P;
  }
  ASSERT_NE(W, nullptr);
  ASSERT_NE(R1, nullptr);

  // RAW from the write (earlier) to the (i-1, j+1) read (later): requires
  // q.i = p.i + 2, q.j = p.j - 1, i.e. carried by i with distance 2.
  RelMap LtI{{F.LoopI->Id, IterRel::Lt}};
  EXPECT_TRUE(DA.mayDepend(*W, *R1, LtI));
  // Not possible at equal i.
  RelMap EqI{{F.LoopI->Id, IterRel::Eq}};
  EXPECT_FALSE(DA.mayDepend(*W, *R1, EqI));
  // With i strictly ordered and j forced equal: distance (2, -1) has
  // j-component -1 != 0, so infeasible.
  RelMap LtIEqJ{{F.LoopI->Id, IterRel::Lt}, {F.LoopJ->Id, IterRel::Eq}};
  EXPECT_FALSE(DA.mayDepend(*W, *R1, LtIEqJ));
  // Distance in j is -1 (q.j < p.j): Gt on j is feasible.
  RelMap LtIGtJ{{F.LoopI->Id, IterRel::Lt}, {F.LoopJ->Id, IterRel::Gt}};
  EXPECT_TRUE(DA.mayDepend(*W, *R1, LtIGtJ));
}

TEST(DepsTest, Fig12dScopeFilteringRemovesFalseDependence) {
  // for i: for j: { var t: for k: { t[k] = a[i,j,k]; b[i,j,k] = t[k] } }
  // The WAW on t across (i, j) iterations is filtered by the stack scope.
  Expr N = ld("n", {}, DataType::Int64);
  Expr I = iv("i"), J = iv("j"), K = iv("k");
  Stmt S1 = makeStore("t", {K}, ld("a", {I, J, K}));
  Stmt S2 = makeStore("b", {I, J, K}, ld("t", {K}));
  Stmt LoopK = makeFor("k", ic(0), ic(8), ForProperty{},
                       makeStmtSeq({S1, S2}));
  Stmt DefT = makeVarDef("t", TensorInfo{{ic(8)}, DataType::Float32},
                         AccessType::Cache, MemType::CPU, LoopK);
  Stmt LoopJ = makeFor("j", ic(0), N, ForProperty{}, DefT);
  Stmt LoopI = makeFor("i", ic(0), N, ForProperty{}, LoopJ);
  Stmt Root = withDefs(LoopI, {"a", "b"}, N);
  DepAnalyzer DA(Root);
  // No dependence carried by i or j: each (i, j) iteration has a fresh t.
  EXPECT_TRUE(DA.carriedBy(LoopI->Id).empty());
  EXPECT_TRUE(DA.carriedBy(LoopJ->Id).empty());
  // But within one (i, j) iteration, k does carry WAR on t[k]? No: S1@k
  // writes t[k], S2@k reads t[k]; different k touch different elements.
  EXPECT_TRUE(DA.carriedBy(LoopK->Id).empty());
}

TEST(DepsTest, TextualOrderAtEqualIters) {
  // { a[i] = 1; b[i] = a[i] } inside one loop: RAW at equal iterations,
  // detected by betweenAtEqualIters in that order but not reversed.
  Expr N = ld("n", {}, DataType::Int64);
  Stmt S1 = makeStore("a", {iv("i")}, ic(1));
  Stmt S2 = makeStore("b", {iv("i")}, ld("a", {iv("i")}));
  Stmt Loop = makeFor("i", ic(0), N, ForProperty{}, makeStmtSeq({S1, S2}));
  Stmt Root = withDefs(Loop, {"a", "b"}, N);
  DepAnalyzer DA(Root);
  auto Deps = DA.betweenAtEqualIters(S1->Id, S2->Id);
  ASSERT_EQ(Deps.size(), 1u);
  EXPECT_EQ(Deps[0].Type, DepType::RAW);
  EXPECT_TRUE(DA.betweenAtEqualIters(S2->Id, S1->Id).empty());
}

TEST(DepsTest, GuardedAccessesDisjointByCondition) {
  // for i: { if i < 5: a[i] = 1; if i >= 5: x += a[i] } -- the write and
  // read ranges are disjoint, so no dependence even at equal iterations.
  Expr N = ld("n", {}, DataType::Int64);
  Stmt W = makeIf(makeLT(iv("i"), ic(5)),
                  makeStore("a", {iv("i")}, ic(1)));
  Stmt R = makeIf(makeGE(iv("i"), ic(5)),
                  makeReduceTo("x", {}, ReduceOpKind::Add,
                               ld("a", {iv("i")})));
  Stmt Loop = makeFor("i", ic(0), N, ForProperty{}, makeStmtSeq({W, R}));
  Stmt Root = makeVarDef("x", TensorInfo{{}, DataType::Float32},
                         AccessType::Output, MemType::CPU,
                         withDefs(Loop, {"a"}, N));
  DepAnalyzer DA(Root);
  for (const FoundDep &D : DA.carriedBy(Loop->Id))
    EXPECT_NE(D.Earlier->Var, "a");
}

//===--------------------------------------------------------------------===//
// ProofContext and bound elimination (Fig. 14 cache-size analysis).
//===--------------------------------------------------------------------===//

TEST(BoundsTest, ProofContextProvesGuards) {
  ProofContext PC([](const std::string &) { return true; });
  PC.pushLoop("i", ic(0), ld("n", {}, DataType::Int64));
  EXPECT_TRUE(PC.provablyTrue(makeGE(iv("i"), ic(0))));
  EXPECT_FALSE(PC.provablyTrue(makeGE(iv("i"), ic(1))));
  EXPECT_TRUE(PC.provablyFalse(makeLT(iv("i"), ic(0))));
  PC.pushCond(makeGE(iv("i"), ic(3)), false);
  EXPECT_TRUE(PC.provablyTrue(makeGE(iv("i"), ic(1))));
  PC.popCond();
  EXPECT_FALSE(PC.provablyTrue(makeGE(iv("i"), ic(1))));
  PC.popLoop();
}

TEST(BoundsTest, UnreachableBranch) {
  ProofContext PC([](const std::string &) { return true; });
  PC.pushLoop("i", ic(0), ic(4));
  PC.pushCond(makeGE(iv("i"), ic(10)), false);
  EXPECT_TRUE(PC.unreachable());
  PC.popCond();
  EXPECT_FALSE(PC.unreachable());
}

TEST(BoundsTest, EliminateItersFig14) {
  // Index i + j with inner loop j in [0, m): bounds [i, i + m - 1].
  IsParamFn P = [](const std::string &) { return true; };
  LinearExpr E = *LinearExpr::tryAdd(LinearExpr::variable("i"),
                                     LinearExpr::variable("j"));
  std::vector<IterRange> Inner{{"j", ic(0), ld("m", {}, DataType::Int64)}};
  auto B = eliminateIters(E, Inner, P);
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->Lower.toString(), "1*i");
  // Upper: i + m - 1.
  EXPECT_EQ(B->Upper.coeffOf("i"), 1);
  EXPECT_EQ(B->Upper.coeffOf("$m"), 1);
  EXPECT_EQ(B->Upper.constTerm(), -1);
}

TEST(BoundsTest, EliminateItersNegativeCoefficient) {
  // Index -k with k in [2, 7): bounds [-6, -2].
  IsParamFn P = [](const std::string &) { return true; };
  LinearExpr E = *LinearExpr::tryScale(LinearExpr::variable("k"), -1);
  std::vector<IterRange> Inner{{"k", ic(2), ic(7)}};
  auto B = eliminateIters(E, Inner, P);
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->Lower.constTerm(), -6);
  EXPECT_EQ(B->Upper.constTerm(), -2);
}

TEST(BoundsTest, LinearToExprRoundTrip) {
  LinearExpr E = LinearExpr::variable("i");
  E.setCoeff("$n", 2);
  E.addConst(3);
  Expr X = linearToExpr(E);
  // Convert back.
  auto L = toLinear(X, [](const std::string &) { return true; });
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(*L, E);
}

} // namespace
