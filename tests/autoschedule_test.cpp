//===- tests/autoschedule_test.cpp - The §4.3 rule passes -------------------===//

#include <cmath>
#include <cstdlib>
#include <gtest/gtest.h>
#include <unistd.h>

#include "autoschedule/autoschedule.h"
#include "frontend/libop.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "workloads/workloads.h"

using namespace ft;

namespace {

TEST(AutoScheduleTest, FusesProducerConsumerChains) {
  // Three elementwise loops over the same range fuse into one.
  FunctionBuilder B("chain");
  View X = B.input("x", {makeIntConst(64)});
  View Y = B.output("y", {makeIntConst(64)});
  View T1 = B.local("t1", {makeIntConst(64)});
  View T2 = B.local("t2", {makeIntConst(64)});
  B.loop("i", 0, 64, [&](Expr I) {
    T1[I].assign(X[I].load() * makeFloatConst(2.0));
  });
  B.loop("i", 0, 64, [&](Expr I) {
    T2[I].assign(T1[I].load() + makeFloatConst(1.0));
  });
  B.loop("i", 0, 64, [&](Expr I) { Y[I].assign(ft::exp(T2[I].load())); });
  Func F = B.build();

  Schedule S(F);
  AutoScheduleOptions Opts;
  Opts.Parallelize = false;
  Opts.Vectorize = false;
  Opts.Unroll = false;
  AutoScheduleReport R = autoSchedule(S, Opts);
  EXPECT_EQ(R.Fused, 2);

  // Results unchanged.
  Buffer BX(DataType::Float32, {64}), BY1(DataType::Float32, {64}),
      BY2(DataType::Float32, {64});
  for (int I = 0; I < 64; ++I)
    BX.as<float>()[I] = 0.01f * float(I);
  interpret(F, {{"x", &BX}, {"y", &BY1}});
  interpret(S.func(), {{"x", &BX}, {"y", &BY2}});
  for (int I = 0; I < 64; ++I)
    EXPECT_NEAR(BY1.as<float>()[I], BY2.as<float>()[I], 1e-5);
}

TEST(AutoScheduleTest, ParallelizesAndLocalizesLongformer) {
  workloads::LongformerConfig C{32, 8, 3};
  Func F = workloads::buildLongformer(C);
  Schedule S(F);
  AutoScheduleOptions POpts;
  POpts.NumThreads = 4; // Pretend a multicore target for this test.
  AutoScheduleReport R = autoSchedule(S, POpts);
  EXPECT_GE(R.Parallelized, 1);
  EXPECT_GE(R.Localized, 2); // dot / attn (and softmax internals).

  // The token loop is parallel.
  auto L = dyn_cast<ForNode>(findStmt(S.ast(), *S.findByLabel("tokens")));
  ASSERT_NE(L, nullptr);
  EXPECT_TRUE(L->Property.Parallel);

  // Semantics preserved.
  workloads::LongformerData D = workloads::makeLongformerData(C);
  Buffer Y1(DataType::Float32, {C.SeqLen, C.Feats});
  Buffer Y2(DataType::Float32, {C.SeqLen, C.Feats});
  interpret(F, {{"Q", &D.Q}, {"K", &D.K}, {"V", &D.V}, {"y", &Y1}});
  interpret(S.func(), {{"Q", &D.Q}, {"K", &D.K}, {"V", &D.V}, {"y", &Y2}});
  for (int64_t I = 0; I < Y1.numel(); ++I)
    EXPECT_NEAR(Y1.as<float>()[I], Y2.as<float>()[I], 1e-4);
}

TEST(AutoScheduleTest, UsesLibForMatmul) {
  FunctionBuilder B("mm");
  View A = B.input("A", {makeIntConst(16), makeIntConst(16)});
  View Bv = B.input("B", {makeIntConst(16), makeIntConst(16)});
  View C = B.output("C", {makeIntConst(16), makeIntConst(16)});
  libop::matmul(B, A, Bv, C);
  Func F = B.build();
  Schedule S(F);
  AutoScheduleOptions Opts;
  Opts.Parallelize = false; // Keep the nest intact for the matcher.
  AutoScheduleReport R = autoSchedule(S, Opts);
  EXPECT_EQ(R.LibCalls, 1);
  EXPECT_NE(toString(S.ast()).find("gemm("), std::string::npos);
}

TEST(AutoScheduleTest, UnrollsShortLoops) {
  workloads::SubdivNetConfig C{16, 4};
  Func F = workloads::buildSubdivNet(C);
  Schedule S(F);
  AutoScheduleOptions Opts;
  Opts.Parallelize = false;
  AutoScheduleReport R = autoSchedule(S, Opts);
  // The 3-neighbor loop is fully unrolled.
  EXPECT_GE(R.Unrolled, 1);

  workloads::SubdivNetData D = workloads::makeSubdivNetData(C);
  Buffer Y1(DataType::Float32, {C.NFaces, C.Feats});
  Buffer Y2(DataType::Float32, {C.NFaces, C.Feats});
  interpret(F, {{"e", &D.E}, {"adj", &D.Adj}, {"y", &Y1}});
  interpret(S.func(), {{"e", &D.E}, {"adj", &D.Adj}, {"y", &Y2}});
  for (int64_t I = 0; I < Y1.numel(); ++I)
    EXPECT_NEAR(Y1.as<float>()[I], Y2.as<float>()[I], 1e-4);
}

TEST(AutoScheduleTest, VectorizeMarksContiguousInnermost) {
  FunctionBuilder B("v");
  View X = B.input("x", {makeIntConst(8), makeIntConst(32)});
  View Y = B.output("y", {makeIntConst(8), makeIntConst(32)});
  B.loop("i", 0, 8, [&](Expr I) {
    B.loop("j", 0, 32,
           [&](Expr J) { Y[I][J].assign(X[I][J].load() * 2); });
  });
  Func F = B.build();
  Schedule S(F);
  AutoScheduleOptions Opts;
  Opts.Parallelize = false;
  Opts.Unroll = false;
  AutoScheduleReport R = autoSchedule(S, Opts);
  EXPECT_GE(R.Vectorized, 1);
}

TEST(AutoScheduleTest, AllWorkloadsSurviveAutoScheduleAndMatch) {
  // The paper's point: "we can aggressively try transformations without
  // worrying about their correctness". Run the full rule stack on every
  // workload and verify outputs are unchanged.
  {
    workloads::SubdivNetConfig C{48, 6};
    Func F = workloads::buildSubdivNet(C);
    Func Opt = autoScheduleFunc(F);
    workloads::SubdivNetData D = workloads::makeSubdivNetData(C);
    Buffer Y1(DataType::Float32, {C.NFaces, C.Feats});
    Buffer Y2(DataType::Float32, {C.NFaces, C.Feats});
    interpret(F, {{"e", &D.E}, {"adj", &D.Adj}, {"y", &Y1}});
    interpret(Opt, {{"e", &D.E}, {"adj", &D.Adj}, {"y", &Y2}});
    for (int64_t I = 0; I < Y1.numel(); ++I)
      ASSERT_NEAR(Y1.as<float>()[I], Y2.as<float>()[I], 1e-4) << "subdivnet";
  }
  {
    workloads::SoftRasConfig C{12, 8, 8, 0.05f};
    Func F = workloads::buildSoftRas(C);
    Func Opt = autoScheduleFunc(F);
    workloads::SoftRasData D = workloads::makeSoftRasData(C);
    Buffer I1(DataType::Float32, {C.numPixels()});
    Buffer I2(DataType::Float32, {C.numPixels()});
    interpret(F, {{"verts", &D.Verts}, {"px", &D.Px}, {"py", &D.Py},
                  {"img", &I1}});
    interpret(Opt, {{"verts", &D.Verts}, {"px", &D.Px}, {"py", &D.Py},
                    {"img", &I2}});
    for (int64_t I = 0; I < I1.numel(); ++I)
      ASSERT_NEAR(I1.as<float>()[I], I2.as<float>()[I], 1e-4) << "softras";
  }
  {
    workloads::GATConfig C{40, 6, 3};
    Func F = workloads::buildGAT(C);
    Func Opt = autoScheduleFunc(F);
    workloads::GATData D = workloads::makeGATData(C);
    Buffer Y1(DataType::Float32, {C.NNodes, C.Feats});
    Buffer Y2(DataType::Float32, {C.NNodes, C.Feats});
    interpret(F, {{"h", &D.H}, {"adj", &D.Adj}, {"a1", &D.A1},
                  {"a2", &D.A2}, {"y", &Y1}});
    interpret(Opt, {{"h", &D.H}, {"adj", &D.Adj}, {"a1", &D.A1},
                    {"a2", &D.A2}, {"y", &Y2}});
    for (int64_t I = 0; I < Y1.numel(); ++I)
      ASSERT_NEAR(Y1.as<float>()[I], Y2.as<float>()[I], 1e-4) << "gat";
  }
}

TEST(AutoScheduleTest, SwapEnablesFusion) {
  // loop A; unrelated store; loop B  — auto_fuse swaps the store past loop
  // B and fuses A with B (paper §4.3: "transformations like swap may be
  // applied to enable it").
  FunctionBuilder B("sw");
  View X = B.input("x", {makeIntConst(16)});
  View Y = B.output("y", {makeIntConst(16)});
  View Z = B.output("z", {makeIntConst(16)});
  View W = B.output("w", {});
  B.loop("i", 0, 16, [&](Expr I) {
    Y[I].assign(X[I].load() * makeFloatConst(2.0));
  });
  W.assign(1.0);
  B.loop("i", 0, 16, [&](Expr I) {
    Z[I].assign(X[I].load() + makeFloatConst(1.0));
  });
  Func F = B.build();
  Schedule S(F);
  AutoScheduleOptions Opts;
  Opts.Parallelize = false;
  Opts.Vectorize = false;
  Opts.Unroll = false;
  AutoScheduleReport R = autoSchedule(S, Opts);
  EXPECT_EQ(R.Fused, 1);

  Buffer BX(DataType::Float32, {16}), BY(DataType::Float32, {16}),
      BZ(DataType::Float32, {16}), BW(DataType::Float32, {});
  for (int I = 0; I < 16; ++I)
    BX.as<float>()[I] = 0.25f * float(I);
  interpret(S.func(), {{"x", &BX}, {"y", &BY}, {"z", &BZ}, {"w", &BW}});
  for (int I = 0; I < 16; ++I) {
    EXPECT_FLOAT_EQ(BY.as<float>()[I], 0.5f * float(I));
    EXPECT_FLOAT_EQ(BZ.as<float>()[I], 0.25f * float(I) + 1.0f);
  }
  EXPECT_FLOAT_EQ(BW.as<float>()[0], 1.0f);
}

TEST(AutoScheduleTest, SearchDedupsStructurallyIdenticalCandidates) {
  // Mutation rounds whose primitives are all rejected reproduce the
  // incumbent bit for bit; the fingerprint memo must skip recompiling them.
  char Tmpl[] = "/tmp/ftsearch.XXXXXX";
  ASSERT_NE(::mkdtemp(Tmpl), nullptr);
  ::setenv("FT_CACHE_DIR", Tmpl, 1);

  FunctionBuilder B("tune");
  View X = B.input("x", {makeIntConst(128)});
  View Y = B.output("y", {makeIntConst(128)});
  B.loop("i", 0, 128, [&](Expr I) {
    Y[I].assign(X[I].load() * makeFloatConst(3.0) + makeFloatConst(1.0));
  });
  Func F = B.build();

  Buffer BX(DataType::Float32, {128}), BY(DataType::Float32, {128});
  for (int I = 0; I < 128; ++I)
    BX.as<float>()[I] = 0.1f * float(I);

  SearchOptions Opts;
  Opts.Rounds = 8;
  Opts.MeasureRuns = 1;
  Opts.OptFlags = "-O1";
  AutoScheduleReport R;
  auto Best = autoTuneFunc(F, {{"x", &BX}, {"y", &BY}}, Opts, &R);
  ASSERT_TRUE(Best.ok()) << Best.message();

  EXPECT_EQ(R.CandidatesTried, Opts.Rounds + 1); // seed + every round
  EXPECT_GT(R.CandidatesDeduped, 0);
  EXPECT_EQ(R.CandidatesTried, R.CandidatesMeasured + R.CandidatesDeduped);
  EXPECT_GT(R.BestMs, 0.0);

  // The winner still computes the same function.
  Buffer CY(DataType::Float32, {128});
  interpret(*Best, {{"x", &BX}, {"y", &CY}});
  for (int I = 0; I < 128; ++I)
    EXPECT_NEAR(CY.as<float>()[I], 3.0f * BX.as<float>()[I] + 1.0f, 1e-5);

  ::unsetenv("FT_CACHE_DIR");
  std::system(("rm -rf '" + std::string(Tmpl) + "'").c_str());
}

} // namespace
