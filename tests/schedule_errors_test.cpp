//===- tests/schedule_errors_test.cpp - Diagnostic quality -----------------===//
//
// Every schedule transformation must reject malformed requests with a
// meaningful Status instead of aborting or miscompiling (paper §4.3: users
// "aggressively try transformations"). These tests pin down the error
// paths and messages.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "frontend/libop.h"
#include "ir/printer.h"
#include "schedule/schedule.h"
#include "support/trace.h"

using namespace ft;

namespace {

Expr ic(int64_t V) { return makeIntConst(V); }

struct TwoLoops {
  Func F;
  int64_t L1 = -1, L2 = -1, Store1 = -1;
};

TwoLoops buildTwoLoops() {
  FunctionBuilder B("t");
  View X = B.input("x", {ic(8)});
  View Y = B.output("y", {ic(8)});
  View Z = B.output("z", {ic(6)});
  TwoLoops T;
  T.L1 = B.loop("i", 0, 8, [&](Expr I) {
    Y[I].assign(X[I].load() * makeFloatConst(2.0));
  });
  T.L2 = B.loop("j", 0, 6, [&](Expr J) {
    Z[J].assign(X[J].load() + makeFloatConst(1.0));
  });
  T.F = B.build();
  auto Loop1 = dyn_cast<ForNode>(findStmt(T.F.Body, T.L1));
  T.Store1 = Loop1->Body->Id;
  return T;
}

TEST(ScheduleErrorsTest, UnknownAndWrongKindIds) {
  TwoLoops T = buildTwoLoops();
  Schedule S(T.F);
  // Unknown statement ID.
  auto R1 = S.split(987654321, 2);
  ASSERT_FALSE(R1.ok());
  EXPECT_NE(R1.message().find("no statement"), std::string::npos);
  // A Store is not a loop.
  auto R2 = S.split(T.Store1, 2);
  ASSERT_FALSE(R2.ok());
  EXPECT_NE(R2.message().find("not a loop"), std::string::npos);
  // Label lookup misses.
  auto R3 = S.findByLabel("nope");
  ASSERT_FALSE(R3.ok());
  EXPECT_NE(R3.message().find("no statement labeled"), std::string::npos);
}

TEST(ScheduleErrorsTest, SplitFactorValidation) {
  TwoLoops T = buildTwoLoops();
  Schedule S(T.F);
  EXPECT_FALSE(S.split(T.L1, 0).ok());
  EXPECT_FALSE(S.split(T.L1, -3).ok());
}

TEST(ScheduleErrorsTest, MergeRequiresPerfectNest) {
  TwoLoops T = buildTwoLoops();
  Schedule S(T.F);
  auto R = S.merge(T.L1, T.L2); // Siblings, not nested.
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("perfectly nested"), std::string::npos);
}

TEST(ScheduleErrorsTest, FuseRequiresAdjacencyAndEqualLength) {
  TwoLoops T = buildTwoLoops();
  Schedule S(T.F);
  // Adjacent but different lengths (8 vs 6).
  auto R = S.fuse(T.L1, T.L2);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("equal length"), std::string::npos);
  // Non-adjacent (wrong order).
  auto R2 = S.fuse(T.L2, T.L1);
  ASSERT_FALSE(R2.ok());
  EXPECT_NE(R2.message().find("consecutive"), std::string::npos);
}

TEST(ScheduleErrorsTest, SwapRequiresAdjacency) {
  TwoLoops T = buildTwoLoops();
  Schedule S(T.F);
  Status St = S.swap(T.L2, T.L1); // Reversed order: not "s1 then s2".
  ASSERT_FALSE(St.ok());
  EXPECT_NE(St.message().find("adjacent"), std::string::npos);
}

TEST(ScheduleErrorsTest, FissionRequiresInteriorPoint) {
  TwoLoops T = buildTwoLoops();
  Schedule S(T.F);
  // The loop body is a single store: no interior split point.
  auto R = S.fission(T.L1, T.Store1);
  EXPECT_FALSE(R.ok());
}

TEST(ScheduleErrorsTest, ReorderValidation) {
  TwoLoops T = buildTwoLoops();
  Schedule S(T.F);
  EXPECT_FALSE(S.reorder({T.L1}).ok());       // Needs two loops.
  EXPECT_FALSE(S.reorder({T.L1, T.L2}).ok()); // Not nested.
}

TEST(ScheduleErrorsTest, CacheValidation) {
  TwoLoops T = buildTwoLoops();
  Schedule S(T.F);
  auto R = S.cache(T.L1, "nosuch", MemType::CPULocal);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("no tensor"), std::string::npos);
  // Tensor exists but is not accessed inside the statement.
  auto R2 = S.cache(T.L1, "z", MemType::CPULocal);
  ASSERT_FALSE(R2.ok());
  EXPECT_NE(R2.message().find("not accessed"), std::string::npos);
}

TEST(ScheduleErrorsTest, CacheRejectsIndirectAccess) {
  FunctionBuilder B("g");
  View E = B.input("e", {ic(8)});
  View Idx = B.input("idx", {ic(8)}, DataType::Int64);
  View Y = B.output("y", {ic(8)});
  int64_t L = B.loop("i", 0, 8, [&](Expr I) {
    Y[I].assign(E[Idx[I].load()].load());
  });
  Func F = B.build();
  Schedule S(F);
  auto R = S.cache(L, "e", MemType::CPULocal);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("non-affine"), std::string::npos);
}

TEST(ScheduleErrorsTest, CacheReductionRequiresUniformReduce) {
  FunctionBuilder B("g");
  View X = B.input("x", {ic(8)});
  View Y = B.output("y", {});
  Y.assign(0.0);
  int64_t L = B.loop("i", 0, 8, [&](Expr I) {
    Y += X[I].load();
    Y.reduceMax(X[I].load()); // Mixed operators.
  });
  Func F = B.build();
  Schedule S(F);
  auto R = S.cacheReduction(L, "y", MemType::CPULocal);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("one reduction"), std::string::npos);
}

TEST(ScheduleErrorsTest, UnrollRequiresConstantLength) {
  FunctionBuilder B("g");
  Expr N = B.scalarInput("n");
  View Y = B.output("y", {N});
  int64_t L = B.loop("i", makeIntConst(0), N,
                     [&](Expr I) { Y[I].assign(makeFloatConst(1.0)); });
  Func F = B.build();
  Schedule S(F);
  Status St = S.unroll(L, /*Full=*/true);
  ASSERT_FALSE(St.ok());
  EXPECT_NE(St.message().find("constant"), std::string::npos);
  // Blend has the same requirement.
  EXPECT_FALSE(S.blend(L).ok());
}

TEST(ScheduleErrorsTest, SeparateTailNeedsAGuard) {
  TwoLoops T = buildTwoLoops();
  Schedule S(T.F);
  auto R = S.separateTail(T.L1);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("no guard"), std::string::npos);
}

TEST(ScheduleErrorsTest, VectorizeWidthValidation) {
  TwoLoops T = buildTwoLoops();
  Schedule S(T.F);
  for (int W : {0, 1, 3, 6, 128}) {
    auto R = S.vectorize(T.L1, W);
    ASSERT_FALSE(R.ok()) << "width " << W;
    EXPECT_NE(R.message().find("power of two in [2, 64]"), std::string::npos)
        << R.message();
  }
}

TEST(ScheduleErrorsTest, VectorizeCarriedDependenceNamesTheVariable) {
  // y[i] = y[i-1] + x[i]: a genuine loop-carried RAW the width form must
  // reject with a diagnostic naming the offending tensor.
  FunctionBuilder B("scan");
  View X = B.input("x", {ic(16)});
  View Y = B.inout("y", {ic(16)});
  int64_t L = B.loop("i", 1, 16, [&](Expr I) {
    Y[I].assign(Y[I - 1].load() + X[I].load());
  });
  Func F = B.build();
  Schedule S(F);
  auto R = S.vectorize(L, 8);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("loop-carried"), std::string::npos)
      << R.message();
  EXPECT_NE(R.message().find("`y`"), std::string::npos) << R.message();
}

TEST(ScheduleErrorsTest, VectorizeMultiStatementReductionRejected) {
  // Two reductions into distinct accumulators in one body do not match the
  // single-accumulator pattern codegen can privatize.
  FunctionBuilder B("twored");
  View X = B.input("x", {ic(16)});
  View Y = B.output("y", {ic(2)});
  int64_t L = B.loop("i", 0, 16, [&](Expr I) {
    Y[ic(0)] += X[I].load();
    Y[ic(1)] += X[I].load() * X[I].load();
  });
  Func F = B.build();
  Schedule S(F);
  auto R = S.vectorize(L, 8);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("single-accumulator"), std::string::npos)
      << R.message();
}

TEST(ScheduleErrorsTest, VectorizeRejectionsLandInAuditLog) {
  // Every rejected vectorize must leave a human-readable audit entry so
  // auto-schedule reports can explain what was not vectorized and why.
  TwoLoops T = buildTwoLoops();
  Schedule S(T.F);
  trace::AuditGuard G;
  size_t Mark = trace::auditSize();
  ASSERT_FALSE(S.vectorize(T.L1, 3).ok());
  auto Log = trace::auditLogSince(Mark);
  ASSERT_FALSE(Log.empty());
  bool Found = false;
  for (const auto &E : Log) {
    if (E.Primitive != "vectorize")
      continue;
    Found = true;
    EXPECT_FALSE(E.Applied);
    EXPECT_FALSE(E.Reason.empty());
    EXPECT_NE(E.Reason.find("power of two"), std::string::npos) << E.Reason;
  }
  EXPECT_TRUE(Found);
}

TEST(ScheduleErrorsTest, RejectedRequestsLeaveProgramIntact) {
  // After a burst of rejected requests the function must be unchanged.
  TwoLoops T = buildTwoLoops();
  Schedule S(T.F);
  std::string Before = toString(S.ast());
  (void)S.split(T.Store1, 2);
  (void)S.merge(T.L1, T.L2);
  (void)S.fuse(T.L1, T.L2);
  (void)S.swap(T.L2, T.L1);
  (void)S.reorder({T.L1, T.L2});
  (void)S.separateTail(T.L1);
  (void)S.cache(T.L1, "nosuch", MemType::CPU);
  (void)S.varSplit("x", 0, 2);
  EXPECT_EQ(toString(S.ast()), Before);
}

} // namespace
