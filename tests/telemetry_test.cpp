//===- tests/telemetry_test.cpp - Serving telemetry plane -----------------===//
//
// The telemetry plane (serve/telemetry.h) piece by piece:
//
//   - the log2-bucketed Histogram: bucket geometry, exact concurrent-free
//     counting, quantile estimation within one bucket of the true sample
//     quantile, merge across shards;
//   - the minimal JSON parser (support/json.h): documents, escapes,
//     numbers, error offsets;
//   - one jsonEscape for every sink: hostile strings round-trip through
//     both the Chrome-trace writer and the telemetry snapshot, byte for
//     byte, via the parser;
//   - the flight recorder: wrap-around, drain order, typed outcomes,
//     cumulative summary;
//   - hot-kernel ranking: heaviest total-ns first;
//   - hooks are inert when telemetry is off;
//   - the snapshot exporter: schema-versioned parsable files, monotone
//     sequence numbers, retention bound; stopExporter is idempotent,
//     safe under concurrent stops, and start/stop cycles restart cleanly;
//   - the per-fingerprint shape table: ranking, cap + "other" overflow
//     bucket with a distinct-shape count;
//   - per-tenant SLO accounting: met/missed verdicts, slack histogram,
//     deadline counters;
//   - the v2 snapshot sections ("shapes", "tenants") round-trip through
//     the JSON parser with counts that sum to the requests served;
//   - telemetry never perturbs compilation (generateCpp is byte-identical
//     with telemetry on and off).
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <gtest/gtest.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "codegen/codegen.h"
#include "frontend/builder.h"
#include "serve/telemetry.h"
#include "support/json.h"
#include "support/metrics.h"
#include "support/string_utils.h"
#include "support/trace.h"

using namespace ft;
using namespace ft::serve;

namespace {

class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    for (const char *V : {"FT_TELEMETRY_DIR", "FT_TELEMETRY_INTERVAL_MS",
                          "FT_TELEMETRY_KEEP", "FT_FLIGHT_CAP"})
      ::unsetenv(V);
    telemetry::stopExporter();
    telemetry::setEnabled(false);
    telemetry::reset();
    telemetry::setShapeTableCap(32); // the FT_SHAPE_TABLE_CAP default
    metrics::resetPrefix("serve/");
    metrics::resetPrefix("test/");
  }
  void TearDown() override { SetUp(); }
};

/// The true sample quantile with the Q*(n-1) rank convention the
/// histogram estimator mirrors.
uint64_t rawQuantile(std::vector<uint64_t> V, double Q) {
  std::sort(V.begin(), V.end());
  return V[size_t(Q * double(V.size() - 1))];
}

} // namespace

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, HistogramBucketGeometry) {
  using HS = metrics::HistogramSnapshot;
  EXPECT_EQ(HS::bucketOf(0), 0);
  EXPECT_EQ(HS::bucketOf(1), 1);
  EXPECT_EQ(HS::bucketOf(2), 2);
  EXPECT_EQ(HS::bucketOf(3), 2);
  EXPECT_EQ(HS::bucketOf(4), 3);
  EXPECT_EQ(HS::bucketOf(1023), 10);
  EXPECT_EQ(HS::bucketOf(1024), 11);
  EXPECT_EQ(HS::bucketOf(UINT64_MAX), HS::kBuckets - 1);
  // Every value lands in [bucketLo, bucketHi) of its own bucket.
  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(7), uint64_t(4096),
                     uint64_t(1) << 40, UINT64_MAX}) {
    int B = HS::bucketOf(V);
    EXPECT_GE(V, HS::bucketLo(B)) << V;
    if (B < HS::kBuckets - 1)
      EXPECT_LT(V, HS::bucketHi(B)) << V;
  }
}

TEST_F(TelemetryTest, HistogramCountsSumsMinMax) {
  metrics::Histogram &H = metrics::histogram("test/hist_counts");
  H.reset();
  uint64_t Sum = 0;
  for (uint64_t V : {uint64_t(0), uint64_t(3), uint64_t(17), uint64_t(17),
                     uint64_t(100000)}) {
    H.record(V);
    Sum += V;
  }
  metrics::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 5u);
  EXPECT_EQ(S.Sum, Sum);
  EXPECT_EQ(S.Min, 0u);
  EXPECT_EQ(S.Max, 100000u);
  EXPECT_EQ(S.Buckets[0], 1u);                                   // the zero
  EXPECT_EQ(S.Buckets[metrics::HistogramSnapshot::bucketOf(17)], 2u);
}

TEST_F(TelemetryTest, HistogramQuantileWithinOneBucketOfRaw) {
  metrics::Histogram &H = metrics::histogram("test/hist_quant");
  H.reset();
  // A skewed latency-like distribution over several decades.
  std::vector<uint64_t> Raw;
  uint64_t Seed = 12345;
  for (int I = 0; I < 5000; ++I) {
    Seed = Seed * 6364136223846793005ull + 1442695040888963407ull;
    uint64_t V = 200 + (Seed >> 33) % 1000;  // bulk: 200..1200 ns
    if (I % 50 == 0)
      V *= 100;                              // tail: ~2% at 100x
    Raw.push_back(V);
    H.record(V);
  }
  metrics::HistogramSnapshot S = H.snapshot();
  using HS = metrics::HistogramSnapshot;
  for (double Q : {0.5, 0.9, 0.95, 0.99}) {
    int HB = HS::bucketOf(uint64_t(S.quantile(Q)));
    int RB = HS::bucketOf(rawQuantile(Raw, Q));
    EXPECT_LE(std::abs(HB - RB), 1) << "q=" << Q;
  }
}

TEST_F(TelemetryTest, HistogramSingleValueQuantilesAreExact) {
  metrics::Histogram &H = metrics::histogram("test/hist_single");
  H.reset();
  for (int I = 0; I < 10; ++I)
    H.record(777);
  metrics::HistogramSnapshot S = H.snapshot();
  // Clamping to [Min, Max] makes degenerate distributions exact.
  EXPECT_DOUBLE_EQ(S.quantile(0.5), 777.0);
  EXPECT_DOUBLE_EQ(S.quantile(0.99), 777.0);
  EXPECT_DOUBLE_EQ(S.mean(), 777.0);
}

TEST_F(TelemetryTest, HistogramMergeAccumulates) {
  metrics::Histogram &A = metrics::histogram("test/hist_merge_a");
  metrics::Histogram &B = metrics::histogram("test/hist_merge_b");
  A.reset();
  B.reset();
  A.record(10);
  A.record(20);
  B.record(5);
  B.record(40000);
  metrics::HistogramSnapshot SA = A.snapshot();
  SA.merge(B.snapshot());
  EXPECT_EQ(SA.Count, 4u);
  EXPECT_EQ(SA.Sum, 10u + 20 + 5 + 40000);
  EXPECT_EQ(SA.Min, 5u);
  EXPECT_EQ(SA.Max, 40000u);
  uint64_t BucketSum = 0;
  for (int I = 0; I < metrics::HistogramSnapshot::kBuckets; ++I)
    BucketSum += SA.Buckets[I];
  EXPECT_EQ(BucketSum, 4u);
}

TEST_F(TelemetryTest, HistogramMergeAfterResetPrefixStartsClean) {
  metrics::Histogram &A = metrics::histogram("test/merge_reset_a");
  metrics::Histogram &B = metrics::histogram("test/merge_reset_b");
  A.record(100);
  B.record(200);
  metrics::resetPrefix("test/");

  // Merging two post-reset (empty) snapshots must stay empty — no stale
  // counts, and no min/max sentinel leaking through the merge.
  metrics::HistogramSnapshot SA = A.snapshot();
  SA.merge(B.snapshot());
  EXPECT_EQ(SA.Count, 0u);
  EXPECT_EQ(SA.Sum, 0u);
  EXPECT_EQ(SA.Min, 0u);
  EXPECT_EQ(SA.Max, 0u);

  // Empty-into-nonempty keeps the nonempty side exact; nonempty-into-
  // empty adopts the other side's min/max instead of widening from the
  // empty side's zeros.
  A.record(7);
  SA = A.snapshot();
  SA.merge(B.snapshot());
  EXPECT_EQ(SA.Count, 1u);
  EXPECT_EQ(SA.Min, 7u);
  EXPECT_EQ(SA.Max, 7u);
  EXPECT_DOUBLE_EQ(SA.quantile(0.5), 7.0);
  metrics::HistogramSnapshot SB = B.snapshot();
  SB.merge(A.snapshot());
  EXPECT_EQ(SB.Count, 1u);
  EXPECT_EQ(SB.Min, 7u);
  EXPECT_EQ(SB.Max, 7u);
}

TEST_F(TelemetryTest, HistogramMergeAtExtremesMatchesRecordAll) {
  // Differential: shard A holds tiny values (incl. the zero bucket),
  // shard B huge ones (incl. the open-ended top bucket). Merging the two
  // snapshots must be indistinguishable from recording every value into
  // one histogram — counts, sum, min/max, every bucket, and therefore
  // every quantile estimate.
  std::vector<uint64_t> Small = {0, 1, 2, 3, 500};
  std::vector<uint64_t> Huge = {uint64_t(1) << 40, uint64_t(1) << 62,
                                UINT64_MAX, UINT64_MAX};
  metrics::Histogram &A = metrics::histogram("test/merge_ext_a");
  metrics::Histogram &B = metrics::histogram("test/merge_ext_b");
  metrics::Histogram &Ref = metrics::histogram("test/merge_ext_ref");
  for (uint64_t V : Small) {
    A.record(V);
    Ref.record(V);
  }
  for (uint64_t V : Huge) {
    B.record(V);
    Ref.record(V);
  }
  metrics::HistogramSnapshot M = A.snapshot();
  M.merge(B.snapshot());
  metrics::HistogramSnapshot R = Ref.snapshot();
  EXPECT_EQ(M.Count, R.Count);
  EXPECT_EQ(M.Sum, R.Sum); // u64 wrap-around is deterministic either way
  EXPECT_EQ(M.Min, R.Min);
  EXPECT_EQ(M.Max, R.Max);
  for (int I = 0; I < metrics::HistogramSnapshot::kBuckets; ++I)
    EXPECT_EQ(M.Buckets[I], R.Buckets[I]) << "bucket " << I;
  for (double Q : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0})
    EXPECT_DOUBLE_EQ(M.quantile(Q), R.quantile(Q)) << "q=" << Q;
  // Merge order must not matter either.
  metrics::HistogramSnapshot M2 = B.snapshot();
  M2.merge(A.snapshot());
  for (double Q : {0.25, 0.5, 0.95})
    EXPECT_DOUBLE_EQ(M2.quantile(Q), M.quantile(Q));
}

TEST_F(TelemetryTest, HistogramSnapshotAddMatchesRecord) {
  // HistogramSnapshot::add (the lock-held local recorder the shape/SLO
  // tables use) must agree exactly with Histogram::record + snapshot.
  metrics::Histogram &H = metrics::histogram("test/snapshot_add_ref");
  metrics::HistogramSnapshot Local;
  for (uint64_t V : {uint64_t(0), uint64_t(5), uint64_t(5), uint64_t(1000),
                     uint64_t(1) << 50}) {
    H.record(V);
    Local.add(V);
  }
  metrics::HistogramSnapshot R = H.snapshot();
  EXPECT_EQ(Local.Count, R.Count);
  EXPECT_EQ(Local.Sum, R.Sum);
  EXPECT_EQ(Local.Min, R.Min);
  EXPECT_EQ(Local.Max, R.Max);
  for (int I = 0; I < metrics::HistogramSnapshot::kBuckets; ++I)
    EXPECT_EQ(Local.Buckets[I], R.Buckets[I]) << "bucket " << I;
}

//===----------------------------------------------------------------------===//
// JSON parser
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, JsonParsesDocuments) {
  auto R = json::parse(
      R"({"a": 1.5, "b": [1, 2, 3], "c": {"d": "x", "e": true}, "f": null})");
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_DOUBLE_EQ(R->num("a"), 1.5);
  ASSERT_NE(R->get("b"), nullptr);
  EXPECT_EQ(R->get("b")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(R->get("b")->items()[2].asNumber(), 3.0);
  const json::Value *D = R->at("c.d");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->asString(), "x");
  EXPECT_TRUE(R->at("c.e")->asBool());
  EXPECT_TRUE(R->get("f")->isNull());
}

TEST_F(TelemetryTest, JsonParsesEscapesAndUnicode) {
  auto R = json::parse(R"({"s": "a\"b\\c\ndAé😀"})");
  ASSERT_TRUE(R.ok()) << R.message();
  // A = 'A', é = e-acute (2 UTF-8 bytes), the surrogate pair is
  // U+1F600 (4 UTF-8 bytes).
  EXPECT_EQ(R->str("s"),
            std::string("a\"b\\c\nd") + "A" + "\xc3\xa9" + "\xf0\x9f\x98\x80");
}

TEST_F(TelemetryTest, JsonRejectsGarbageWithOffsets) {
  EXPECT_FALSE(json::parse("{").ok());
  EXPECT_FALSE(json::parse("[1, 2,]").ok());
  EXPECT_FALSE(json::parse("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(json::parse("\"unterminated").ok());
  auto R = json::parse("[1, x]");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("byte"), std::string::npos) << R.message();
}

//===----------------------------------------------------------------------===//
// jsonEscape round-trips through every sink
//===----------------------------------------------------------------------===//

namespace {
/// Quotes, backslashes, newlines, tabs, and a raw control byte — the
/// characters that break naive JSON emitters.
const std::string kHostile = "evil\"name\\with\nnew\tline\x01end";
} // namespace

TEST_F(TelemetryTest, HostileStringsRoundTripThroughChromeTrace) {
  trace::EnabledGuard G(true, false);
  trace::clear();
  {
    trace::Span Sp(kHostile.c_str());
    Sp.annotate(kHostile, kHostile);
  }
  char Tmpl[] = "/tmp/fttrace.XXXXXX.json";
  int Fd = ::mkstemps(Tmpl, 5);
  ASSERT_GE(Fd, 0);
  ::close(Fd);
  Status S = trace::writeChromeTrace(Tmpl);
  ASSERT_TRUE(S.ok()) << S.message();
  auto R = json::parseFile(Tmpl);
  ::unlink(Tmpl);
  trace::clear();
  ASSERT_TRUE(R.ok()) << R.message();

  const json::Value *Events = R->get("traceEvents");
  ASSERT_NE(Events, nullptr);
  bool Found = false;
  for (const json::Value &E : Events->items())
    if (E.str("name") == kHostile) {
      Found = true;
      const json::Value *Args = E.get("args");
      ASSERT_NE(Args, nullptr);
      ASSERT_NE(Args->get(kHostile), nullptr);
      EXPECT_EQ(Args->get(kHostile)->asString(), kHostile);
    }
  EXPECT_TRUE(Found) << "hostile span name did not survive the round trip";
}

TEST_F(TelemetryTest, HostileStringsRoundTripThroughSnapshot) {
  telemetry::setEnabled(true);
  telemetry::RequestSample RS;
  RS.Fingerprint = 0xabcdef;
  RS.Out = Outcome::RunError;
  RS.Error = kHostile;
  telemetry::onRequestComplete(RS);
  // A hostile metric name exercises the counter-key escaping too.
  metrics::counter("test/hostile\"\n\x02name").fetch_add(1);

  std::string Snap = telemetry::writeSnapshotString();
  auto R = json::parse(Snap);
  ASSERT_TRUE(R.ok()) << R.message() << "\n" << Snap;

  const json::Value *Recent = R->at("flight.recent");
  ASSERT_NE(Recent, nullptr);
  ASSERT_EQ(Recent->items().size(), 1u);
  EXPECT_EQ(Recent->items()[0].str("error"), kHostile);
  EXPECT_EQ(Recent->items()[0].str("outcome"), "run_error");
  ASSERT_NE(R->get("counters"), nullptr);
  const json::Value *C = R->get("counters")->get("test/hostile\"\n\x02name");
  ASSERT_NE(C, nullptr);
  EXPECT_DOUBLE_EQ(C->asNumber(), 1.0);
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, FlightRecorderWrapsAndDrainsInOrder) {
  FlightRecorder FR(4);
  for (uint64_t I = 0; I < 10; ++I) {
    FlightEvent E;
    E.Fingerprint = I;
    FR.record(std::move(E));
  }
  EXPECT_EQ(FR.size(), 4u);
  EXPECT_EQ(FR.capacity(), 4u);
  std::vector<FlightEvent> Got = FR.drain();
  ASSERT_EQ(Got.size(), 4u);
  // The newest four, oldest first, with the stamped Seq preserved.
  for (size_t I = 0; I < 4; ++I) {
    EXPECT_EQ(Got[I].Fingerprint, 6 + I);
    EXPECT_EQ(Got[I].Seq, 6 + I);
  }
  EXPECT_EQ(FR.size(), 0u);
  // drain() leaves the cumulative summary alone.
  EXPECT_EQ(FR.summary().Recorded, 10u);
}

TEST_F(TelemetryTest, FlightRecorderOutcomeTalliesAndTruncation) {
  FlightRecorder FR(8);
  auto Rec = [&FR](Outcome O) {
    FlightEvent E;
    E.Out = O;
    FR.record(std::move(E));
  };
  Rec(Outcome::Ok);
  Rec(Outcome::Ok);
  Rec(Outcome::InvalidArgs);
  Rec(Outcome::RunError);
  Rec(Outcome::RejectedFull);
  Rec(Outcome::RejectedShutdown);
  FlightSummary S = FR.summary();
  EXPECT_EQ(S.Recorded, 6u);
  EXPECT_EQ(S.Ok, 2u);
  EXPECT_EQ(S.InvalidArgs, 1u);
  EXPECT_EQ(S.RunErrors, 1u);
  EXPECT_EQ(S.RejectedFull, 1u);
  EXPECT_EQ(S.RejectedShutdown, 1u);

  FlightEvent Long;
  Long.Error = std::string(4096, 'x');
  FR.record(std::move(Long));
  std::vector<FlightEvent> All = FR.drain();
  EXPECT_LE(All.back().Error.size(), 160u);

  EXPECT_STREQ(nameOf(Outcome::Ok), "ok");
  EXPECT_STREQ(nameOf(Outcome::InvalidArgs), "invalid_args");
  EXPECT_STREQ(nameOf(Outcome::RunError), "run_error");
  EXPECT_STREQ(nameOf(Outcome::RejectedFull), "rejected_full");
  EXPECT_STREQ(nameOf(Outcome::RejectedShutdown), "rejected_shutdown");
}

//===----------------------------------------------------------------------===//
// Hooks, ranking, and the off switch
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, HooksRecordNothingWhenDisabled) {
  telemetry::setEnabled(false);
  telemetry::RequestSample RS;
  RS.Fingerprint = 42;
  RS.QueueNs = 100;
  telemetry::onRequestComplete(RS);
  telemetry::onReject(42, Outcome::RejectedFull);
  EXPECT_EQ(telemetry::onBatch(4), 0u);
  telemetry::onCompile(1000, true);

  EXPECT_EQ(metrics::histogram("serve/queue_wait_ns").count(), 0u);
  EXPECT_EQ(metrics::histogram("serve/batch_size").count(), 0u);
  EXPECT_EQ(metrics::histogram("serve/compile_ns").count(), 0u);
  EXPECT_EQ(flightRecorder().summary().Recorded, 0u);
  EXPECT_TRUE(telemetry::hotKernels().empty());
}

TEST_F(TelemetryTest, HotKernelsRankByTotalServedTime) {
  telemetry::setEnabled(true);
  auto Feed = [](uint64_t Fp, int N, uint64_t TotalNsEach, Tier T,
                 Outcome O = Outcome::Ok) {
    for (int I = 0; I < N; ++I) {
      telemetry::RequestSample RS;
      RS.Fingerprint = Fp;
      RS.ServedBy = T;
      RS.Out = O;
      RS.TotalNs = TotalNsEach;
      RS.QueueNs = 1;
      RS.RunNs = TotalNsEach - 1;
      telemetry::onRequestComplete(RS);
    }
  };
  Feed(0x1, 100, 1000, Tier::Jit);              // 100k ns total
  Feed(0x2, 2, 1'000'000, Tier::Interp);        // 2M ns: hottest
  Feed(0x3, 10, 500, Tier::Jit, Outcome::RunError);

  std::vector<telemetry::HotKernel> Hot = telemetry::hotKernels();
  ASSERT_EQ(Hot.size(), 3u);
  EXPECT_EQ(Hot[0].Fingerprint, 0x2u);
  EXPECT_EQ(Hot[0].Requests, 2u);
  EXPECT_EQ(Hot[0].TotalNs, 2'000'000u);
  EXPECT_DOUBLE_EQ(Hot[0].MeanNs, 1'000'000.0);
  EXPECT_EQ(Hot[0].Interp, 2u);
  EXPECT_EQ(Hot[1].Fingerprint, 0x1u);
  EXPECT_EQ(Hot[2].Fingerprint, 0x3u);
  EXPECT_EQ(Hot[2].Errors, 10u);

  // TopK truncation.
  EXPECT_EQ(telemetry::hotKernels(1).size(), 1u);
}

//===----------------------------------------------------------------------===//
// Shape table (workload characterization)
//===----------------------------------------------------------------------===//

namespace {

/// Feeds one completed request with a shape key into the hooks.
void feedShape(uint64_t Fp, const std::string &Shape, uint64_t TotalNs,
               const std::string &Tenant = "default",
               uint64_t DeadlineNs = 0) {
  serve::telemetry::RequestSample RS;
  RS.Fingerprint = Fp;
  RS.ReqId = serve::nextRequestId();
  RS.Tenant = Tenant;
  RS.DeadlineNs = DeadlineNs;
  RS.ShapeKey = Shape;
  RS.TotalNs = TotalNs;
  RS.RunNs = TotalNs;
  serve::telemetry::onRequestComplete(RS);
}

} // namespace

TEST_F(TelemetryTest, HotShapesRankByTotalServedTime) {
  telemetry::setEnabled(true);
  feedShape(0x9, "x:f32[64]", 1000);
  feedShape(0x9, "x:f32[64]", 1000);
  feedShape(0x9, "x:f32[8192]", 50'000); // hottest: 1 req x 50k ns
  feedShape(0x7, "x:f32[16]", 10'000);

  std::vector<telemetry::ShapeStat> Hot = telemetry::hotShapes();
  ASSERT_EQ(Hot.size(), 3u);
  EXPECT_EQ(Hot[0].ShapeKey, "x:f32[8192]");
  EXPECT_EQ(Hot[0].Fingerprint, 0x9u);
  EXPECT_EQ(Hot[0].Requests, 1u);
  EXPECT_EQ(Hot[0].TotalNs, 50'000u);
  EXPECT_EQ(Hot[1].Fingerprint, 0x7u);
  EXPECT_EQ(Hot[2].ShapeKey, "x:f32[64]");
  EXPECT_EQ(Hot[2].Requests, 2u);
  EXPECT_DOUBLE_EQ(Hot[2].MeanNs, 1000.0);
  EXPECT_EQ(Hot[2].Lat.Count, 2u);
  EXPECT_DOUBLE_EQ(Hot[2].Lat.quantile(0.5), 1000.0);
  EXPECT_EQ(telemetry::hotShapes(1).size(), 1u);

  // Requests without a shape key (telemetry enabled mid-flight, say)
  // count for the kernel aggregate but add no shape row.
  telemetry::RequestSample NoShape;
  NoShape.Fingerprint = 0x9;
  NoShape.TotalNs = 99;
  telemetry::onRequestComplete(NoShape);
  EXPECT_EQ(telemetry::hotShapes().size(), 3u);
}

TEST_F(TelemetryTest, ShapeTableCapFoldsOverflowIntoOtherBucket) {
  telemetry::setEnabled(true);
  telemetry::setShapeTableCap(2);
  EXPECT_EQ(telemetry::shapeTableCap(), 2u);
  feedShape(0x5, "a", 100);
  feedShape(0x5, "b", 200);
  feedShape(0x5, "c", 300); // past the cap -> other
  feedShape(0x5, "d", 400); // other, second distinct shape
  feedShape(0x5, "c", 300); // other again, already counted as distinct
  feedShape(0x5, "a", 100); // existing row still updates past the cap

  std::vector<telemetry::ShapeStat> All = telemetry::shapeTable();
  ASSERT_EQ(All.size(), 3u); // a, b, other
  const telemetry::ShapeStat *Other = nullptr;
  uint64_t TrackedReqs = 0;
  for (const telemetry::ShapeStat &S : All) {
    if (S.ShapeKey == "other")
      Other = &S;
    else
      TrackedReqs += S.Requests;
  }
  ASSERT_NE(Other, nullptr);
  EXPECT_EQ(Other->Requests, 3u); // c, d, c
  EXPECT_EQ(Other->TotalNs, 1000u);
  EXPECT_EQ(TrackedReqs, 3u); // a x2 + b
  // hotShapes never nominates the overflow bucket.
  for (const telemetry::ShapeStat &S : telemetry::hotShapes())
    EXPECT_NE(S.ShapeKey, "other");
}

//===----------------------------------------------------------------------===//
// Per-tenant SLO accounting
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, TenantSloTalliesMetMissedAndSlack) {
  telemetry::setEnabled(true);
  // acme: two met (slack 900, 500 ns), one missed (overrun 1000 ns).
  feedShape(0x1, "s", /*TotalNs=*/100, "acme", /*DeadlineNs=*/1000);
  feedShape(0x1, "s", 500, "acme", 1000);
  feedShape(0x1, "s", 2000, "acme", 1000);
  // beta: no deadline — counts requests, no verdict.
  feedShape(0x1, "s", 100, "beta", 0);

  std::vector<telemetry::TenantSlo> Slo = telemetry::tenantSlo();
  ASSERT_EQ(Slo.size(), 2u); // sorted by tenant name
  EXPECT_EQ(Slo[0].Tenant, "acme");
  EXPECT_EQ(Slo[0].Requests, 3u);
  EXPECT_EQ(Slo[0].Met, 2u);
  EXPECT_EQ(Slo[0].Missed, 1u);
  EXPECT_EQ(Slo[0].Slack.Count, 2u);
  EXPECT_EQ(Slo[0].Slack.Min, 500u);
  EXPECT_EQ(Slo[0].Slack.Max, 900u);
  EXPECT_EQ(Slo[1].Tenant, "beta");
  EXPECT_EQ(Slo[1].Requests, 1u);
  EXPECT_EQ(Slo[1].Met, 0u);
  EXPECT_EQ(Slo[1].Missed, 0u);

  // Process-wide counters and the met/missed histograms agree.
  EXPECT_EQ(metrics::counter("serve/deadline_met").load(), 2u);
  EXPECT_EQ(metrics::counter("serve/deadline_missed").load(), 1u);
  EXPECT_EQ(metrics::histogram("serve/slo_slack_ns").count(), 2u);
  EXPECT_EQ(metrics::histogram("serve/slo_overrun_ns").count(), 1u);
  metrics::HistogramSnapshot Overrun =
      metrics::histogram("serve/slo_overrun_ns").snapshot();
  EXPECT_EQ(Overrun.Min, 1000u); // 2000 - 1000
}

TEST_F(TelemetryTest, DeadlineExceededRequestsAreFlaggedInFlightRecorder) {
  telemetry::setEnabled(true);
  feedShape(0x1, "s", 100, "acme", 1000);  // met
  feedShape(0x1, "s", 5000, "acme", 1000); // missed
  std::vector<FlightEvent> Evs = flightRecorder().drain();
  ASSERT_EQ(Evs.size(), 2u);
  EXPECT_FALSE(Evs[0].DeadlineMissed);
  EXPECT_TRUE(Evs[1].DeadlineMissed);
  EXPECT_EQ(Evs[1].DeadlineNs, 1000u);
  EXPECT_EQ(Evs[1].Tenant, "acme");
  EXPECT_NE(Evs[1].ReqId, 0u);
  // Queue-vs-run breakdown survives into the event.
  EXPECT_EQ(Evs[1].TotalNs, 5000u);
  EXPECT_EQ(Evs[1].RunNs, 5000u);
}

//===----------------------------------------------------------------------===//
// Snapshot exporter
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, ExporterWritesValidMonotoneSnapshotsWithRetention) {
  namespace fs = std::filesystem;
  char Tmpl[] = "/tmp/fttelem.XXXXXX";
  ASSERT_NE(::mkdtemp(Tmpl), nullptr);
  std::string Dir = Tmpl;

  telemetry::Config C;
  C.Dir = Dir;
  C.IntervalMs = 20;
  C.Keep = 3;
  ASSERT_TRUE(telemetry::startExporter(C).ok());
  EXPECT_TRUE(telemetry::enabled());

  telemetry::RequestSample RS;
  RS.Fingerprint = 0xdeadbeefcafef00dull;
  RS.TotalNs = 12345;
  telemetry::onRequestComplete(RS);

  // Long enough for several intervals; stop writes one more (the exit
  // dump), so retention must still hold afterwards.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  telemetry::stopExporter();

  std::vector<std::string> Names;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir))
    Names.push_back(E.path().filename().string());
  std::sort(Names.begin(), Names.end());
  ASSERT_GE(Names.size(), 2u) << "exporter wrote too few snapshots";
  EXPECT_LE(Names.size(), 3u) << "retention did not prune";

  double PrevSeq = 0;
  for (const std::string &N : Names) {
    ASSERT_EQ(N.rfind("snap-", 0), 0u) << N;
    auto R = json::parseFile((fs::path(Dir) / N).string());
    ASSERT_TRUE(R.ok()) << R.message();
    EXPECT_EQ(R->str("schema"), "freetensor-telemetry/v2");
    double Seq = R->num("seq");
    EXPECT_GT(Seq, PrevSeq) << "sequence numbers must be strictly monotone";
    PrevSeq = Seq;
    // The served fingerprint travels as a hex string.
    const json::Value *Kernels = R->get("kernels");
    ASSERT_NE(Kernels, nullptr);
    ASSERT_EQ(Kernels->items().size(), 1u);
    EXPECT_EQ(Kernels->items()[0].str("fingerprint"), "0xdeadbeefcafef00d");
    EXPECT_DOUBLE_EQ(Kernels->items()[0].num("total_ns"), 12345.0);
  }
  EXPECT_GE(telemetry::snapshotsWritten(), Names.size());

  std::system(("rm -rf '" + Dir + "'").c_str());
}

TEST_F(TelemetryTest, ExporterStopIsIdempotentConcurrentAndRestartable) {
  char Tmpl[] = "/tmp/fttelemstop.XXXXXX";
  ASSERT_NE(::mkdtemp(Tmpl), nullptr);
  std::string Dir = Tmpl;
  telemetry::Config C;
  C.Dir = Dir;
  C.IntervalMs = 10;
  C.Keep = 4;

  // Stop with nothing running is a no-op, any number of times.
  telemetry::stopExporter();
  telemetry::stopExporter();

  // The regression this guards: a start -> stop -> start cycle must
  // never let the new run's state clear a stopping run's flag (the old
  // single-struct exporter wedged the stopper's join exactly this way),
  // and concurrent stops must all return with exactly one joining.
  for (int Cycle = 0; Cycle < 5; ++Cycle) {
    ASSERT_TRUE(telemetry::startExporter(C).ok()) << "cycle " << Cycle;
    // Restart while running: stops the displaced run internally.
    ASSERT_TRUE(telemetry::startExporter(C).ok()) << "cycle " << Cycle;
    std::vector<std::thread> Stoppers;
    for (int I = 0; I < 8; ++I)
      Stoppers.emplace_back([] { telemetry::stopExporter(); });
    for (std::thread &T : Stoppers)
      T.join();
    telemetry::stopExporter(); // double stop after the race
  }

  // After all that churn a fresh exporter still exports.
  uint64_t Before = telemetry::snapshotsWritten();
  ASSERT_TRUE(telemetry::startExporter(C).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  telemetry::stopExporter();
  EXPECT_GT(telemetry::snapshotsWritten(), Before);

  std::system(("rm -rf '" + Dir + "'").c_str());
}

TEST_F(TelemetryTest, SnapshotCarriesShapeAndTenantSections) {
  telemetry::setEnabled(true);
  telemetry::setShapeTableCap(1);
  feedShape(0xabc, "x:f32[64]", 1000, "acme", 10'000); // met
  feedShape(0xabc, "x:f32[64]", 3000, "acme", 10'000); // met
  feedShape(0xabc, "x:f32[128]", 20'000, "acme", 10'000); // other, missed

  auto R = json::parse(telemetry::writeSnapshotString());
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_EQ(R->str("schema"), "freetensor-telemetry/v2");

  const json::Value *Shapes = R->get("shapes");
  ASSERT_NE(Shapes, nullptr);
  ASSERT_EQ(Shapes->items().size(), 1u);
  const json::Value &Fp = Shapes->items()[0];
  EXPECT_EQ(Fp.str("fingerprint"), "0x0000000000000abc");
  EXPECT_DOUBLE_EQ(Fp.num("table_cap"), 1.0);
  const json::Value *Rows = Fp.get("rows");
  ASSERT_NE(Rows, nullptr);
  ASSERT_EQ(Rows->items().size(), 1u);
  const json::Value &Row = Rows->items()[0];
  EXPECT_EQ(Row.str("shape"), "x:f32[64]");
  EXPECT_DOUBLE_EQ(Row.num("requests"), 2.0);
  EXPECT_DOUBLE_EQ(Row.num("total_ns"), 4000.0);
  EXPECT_DOUBLE_EQ(Row.num("mean_ns"), 2000.0);
  EXPECT_DOUBLE_EQ(Row.num("min_ns"), 1000.0);
  EXPECT_DOUBLE_EQ(Row.num("max_ns"), 3000.0);
  const json::Value *Other = Fp.get("other");
  ASSERT_NE(Other, nullptr);
  EXPECT_DOUBLE_EQ(Other->num("requests"), 1.0);
  EXPECT_DOUBLE_EQ(Other->num("distinct_shapes"), 1.0);
  // Row + other requests sum to the fingerprint's served requests.
  std::vector<telemetry::HotKernel> Hot = telemetry::hotKernels();
  ASSERT_EQ(Hot.size(), 1u);
  EXPECT_EQ(Row.num("requests") + Other->num("requests"),
            double(Hot[0].Requests));

  const json::Value *Tenants = R->get("tenants");
  ASSERT_NE(Tenants, nullptr);
  ASSERT_EQ(Tenants->items().size(), 1u);
  const json::Value &T = Tenants->items()[0];
  EXPECT_EQ(T.str("tenant"), "acme");
  EXPECT_DOUBLE_EQ(T.num("requests"), 3.0);
  EXPECT_DOUBLE_EQ(T.num("met"), 2.0);
  EXPECT_DOUBLE_EQ(T.num("missed"), 1.0);
  const json::Value *Slack = T.get("slack");
  ASSERT_NE(Slack, nullptr);
  EXPECT_DOUBLE_EQ(Slack->num("count"), 2.0);
  EXPECT_DOUBLE_EQ(Slack->num("min_ns"), 7000.0);
  EXPECT_DOUBLE_EQ(Slack->num("max_ns"), 9000.0);

  // Flight events carry the request identity + deadline verdict.
  const json::Value *Flight = R->get("flight");
  ASSERT_NE(Flight, nullptr);
  const json::Value *Recent = Flight->get("recent");
  ASSERT_NE(Recent, nullptr);
  ASSERT_EQ(Recent->items().size(), 3u);
  const json::Value &Missed = Recent->items()[2];
  EXPECT_GT(Missed.num("req_id"), 0.0);
  EXPECT_EQ(Missed.str("tenant"), "acme");
  EXPECT_DOUBLE_EQ(Missed.num("deadline_ns"), 10'000.0);
  EXPECT_TRUE(Missed.get("deadline_missed") != nullptr &&
              Missed.get("deadline_missed")->asBool());
}

TEST_F(TelemetryTest, SnapshotStringParsesAndCarriesHistograms) {
  telemetry::setEnabled(true);
  metrics::histogram("serve/queue_wait_ns").record(1000);
  metrics::histogram("serve/queue_wait_ns").record(2000);

  auto R = json::parse(telemetry::writeSnapshotString());
  ASSERT_TRUE(R.ok()) << R.message();
  const json::Value *Hs = R->get("histograms");
  ASSERT_NE(Hs, nullptr);
  bool Found = false;
  for (const json::Value &H : Hs->items()) {
    if (H.str("name") != "serve/queue_wait_ns")
      continue;
    Found = true;
    EXPECT_DOUBLE_EQ(H.num("count"), 2.0);
    EXPECT_DOUBLE_EQ(H.num("sum"), 3000.0);
    EXPECT_DOUBLE_EQ(H.num("min"), 1000.0);
    EXPECT_DOUBLE_EQ(H.num("max"), 2000.0);
    ASSERT_NE(H.get("buckets"), nullptr);
    uint64_t Total = 0;
    for (const json::Value &B : H.get("buckets")->items()) {
      ASSERT_EQ(B.items().size(), 2u);
      Total += uint64_t(B.items()[1].asNumber());
    }
    EXPECT_EQ(Total, 2u);
  }
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Telemetry must not perturb compilation
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, GeneratedCodeIsByteIdenticalWithTelemetryOnOrOff) {
  FunctionBuilder B("telemaxpy");
  View X = B.input("x", {makeIntConst(64)});
  View Y = B.output("y", {makeIntConst(64)});
  B.loop("i", 0, 64, [&](Expr I) {
    Y[I].assign(X[I].load() * makeFloatConst(2.0) + makeFloatConst(1.0));
  });
  Func F = B.build();

  telemetry::setEnabled(false);
  std::string Off = generateCpp(F);
  telemetry::setEnabled(true);
  std::string On = generateCpp(F);
  EXPECT_EQ(Off, On);
}
