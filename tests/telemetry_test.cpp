//===- tests/telemetry_test.cpp - Serving telemetry plane -----------------===//
//
// The telemetry plane (serve/telemetry.h) piece by piece:
//
//   - the log2-bucketed Histogram: bucket geometry, exact concurrent-free
//     counting, quantile estimation within one bucket of the true sample
//     quantile, merge across shards;
//   - the minimal JSON parser (support/json.h): documents, escapes,
//     numbers, error offsets;
//   - one jsonEscape for every sink: hostile strings round-trip through
//     both the Chrome-trace writer and the telemetry snapshot, byte for
//     byte, via the parser;
//   - the flight recorder: wrap-around, drain order, typed outcomes,
//     cumulative summary;
//   - hot-kernel ranking: heaviest total-ns first;
//   - hooks are inert when telemetry is off;
//   - the snapshot exporter: schema-versioned parsable files, monotone
//     sequence numbers, retention bound;
//   - telemetry never perturbs compilation (generateCpp is byte-identical
//     with telemetry on and off).
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <gtest/gtest.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "codegen/codegen.h"
#include "frontend/builder.h"
#include "serve/telemetry.h"
#include "support/json.h"
#include "support/metrics.h"
#include "support/string_utils.h"
#include "support/trace.h"

using namespace ft;
using namespace ft::serve;

namespace {

class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    for (const char *V : {"FT_TELEMETRY_DIR", "FT_TELEMETRY_INTERVAL_MS",
                          "FT_TELEMETRY_KEEP", "FT_FLIGHT_CAP"})
      ::unsetenv(V);
    telemetry::stopExporter();
    telemetry::setEnabled(false);
    telemetry::reset();
    metrics::resetPrefix("serve/");
    metrics::resetPrefix("test/");
  }
  void TearDown() override { SetUp(); }
};

/// The true sample quantile with the Q*(n-1) rank convention the
/// histogram estimator mirrors.
uint64_t rawQuantile(std::vector<uint64_t> V, double Q) {
  std::sort(V.begin(), V.end());
  return V[size_t(Q * double(V.size() - 1))];
}

} // namespace

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, HistogramBucketGeometry) {
  using HS = metrics::HistogramSnapshot;
  EXPECT_EQ(HS::bucketOf(0), 0);
  EXPECT_EQ(HS::bucketOf(1), 1);
  EXPECT_EQ(HS::bucketOf(2), 2);
  EXPECT_EQ(HS::bucketOf(3), 2);
  EXPECT_EQ(HS::bucketOf(4), 3);
  EXPECT_EQ(HS::bucketOf(1023), 10);
  EXPECT_EQ(HS::bucketOf(1024), 11);
  EXPECT_EQ(HS::bucketOf(UINT64_MAX), HS::kBuckets - 1);
  // Every value lands in [bucketLo, bucketHi) of its own bucket.
  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(7), uint64_t(4096),
                     uint64_t(1) << 40, UINT64_MAX}) {
    int B = HS::bucketOf(V);
    EXPECT_GE(V, HS::bucketLo(B)) << V;
    if (B < HS::kBuckets - 1)
      EXPECT_LT(V, HS::bucketHi(B)) << V;
  }
}

TEST_F(TelemetryTest, HistogramCountsSumsMinMax) {
  metrics::Histogram &H = metrics::histogram("test/hist_counts");
  H.reset();
  uint64_t Sum = 0;
  for (uint64_t V : {uint64_t(0), uint64_t(3), uint64_t(17), uint64_t(17),
                     uint64_t(100000)}) {
    H.record(V);
    Sum += V;
  }
  metrics::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 5u);
  EXPECT_EQ(S.Sum, Sum);
  EXPECT_EQ(S.Min, 0u);
  EXPECT_EQ(S.Max, 100000u);
  EXPECT_EQ(S.Buckets[0], 1u);                                   // the zero
  EXPECT_EQ(S.Buckets[metrics::HistogramSnapshot::bucketOf(17)], 2u);
}

TEST_F(TelemetryTest, HistogramQuantileWithinOneBucketOfRaw) {
  metrics::Histogram &H = metrics::histogram("test/hist_quant");
  H.reset();
  // A skewed latency-like distribution over several decades.
  std::vector<uint64_t> Raw;
  uint64_t Seed = 12345;
  for (int I = 0; I < 5000; ++I) {
    Seed = Seed * 6364136223846793005ull + 1442695040888963407ull;
    uint64_t V = 200 + (Seed >> 33) % 1000;  // bulk: 200..1200 ns
    if (I % 50 == 0)
      V *= 100;                              // tail: ~2% at 100x
    Raw.push_back(V);
    H.record(V);
  }
  metrics::HistogramSnapshot S = H.snapshot();
  using HS = metrics::HistogramSnapshot;
  for (double Q : {0.5, 0.9, 0.95, 0.99}) {
    int HB = HS::bucketOf(uint64_t(S.quantile(Q)));
    int RB = HS::bucketOf(rawQuantile(Raw, Q));
    EXPECT_LE(std::abs(HB - RB), 1) << "q=" << Q;
  }
}

TEST_F(TelemetryTest, HistogramSingleValueQuantilesAreExact) {
  metrics::Histogram &H = metrics::histogram("test/hist_single");
  H.reset();
  for (int I = 0; I < 10; ++I)
    H.record(777);
  metrics::HistogramSnapshot S = H.snapshot();
  // Clamping to [Min, Max] makes degenerate distributions exact.
  EXPECT_DOUBLE_EQ(S.quantile(0.5), 777.0);
  EXPECT_DOUBLE_EQ(S.quantile(0.99), 777.0);
  EXPECT_DOUBLE_EQ(S.mean(), 777.0);
}

TEST_F(TelemetryTest, HistogramMergeAccumulates) {
  metrics::Histogram &A = metrics::histogram("test/hist_merge_a");
  metrics::Histogram &B = metrics::histogram("test/hist_merge_b");
  A.reset();
  B.reset();
  A.record(10);
  A.record(20);
  B.record(5);
  B.record(40000);
  metrics::HistogramSnapshot SA = A.snapshot();
  SA.merge(B.snapshot());
  EXPECT_EQ(SA.Count, 4u);
  EXPECT_EQ(SA.Sum, 10u + 20 + 5 + 40000);
  EXPECT_EQ(SA.Min, 5u);
  EXPECT_EQ(SA.Max, 40000u);
  uint64_t BucketSum = 0;
  for (int I = 0; I < metrics::HistogramSnapshot::kBuckets; ++I)
    BucketSum += SA.Buckets[I];
  EXPECT_EQ(BucketSum, 4u);
}

//===----------------------------------------------------------------------===//
// JSON parser
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, JsonParsesDocuments) {
  auto R = json::parse(
      R"({"a": 1.5, "b": [1, 2, 3], "c": {"d": "x", "e": true}, "f": null})");
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_DOUBLE_EQ(R->num("a"), 1.5);
  ASSERT_NE(R->get("b"), nullptr);
  EXPECT_EQ(R->get("b")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(R->get("b")->items()[2].asNumber(), 3.0);
  const json::Value *D = R->at("c.d");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->asString(), "x");
  EXPECT_TRUE(R->at("c.e")->asBool());
  EXPECT_TRUE(R->get("f")->isNull());
}

TEST_F(TelemetryTest, JsonParsesEscapesAndUnicode) {
  auto R = json::parse(R"({"s": "a\"b\\c\ndAé😀"})");
  ASSERT_TRUE(R.ok()) << R.message();
  // A = 'A', é = e-acute (2 UTF-8 bytes), the surrogate pair is
  // U+1F600 (4 UTF-8 bytes).
  EXPECT_EQ(R->str("s"),
            std::string("a\"b\\c\nd") + "A" + "\xc3\xa9" + "\xf0\x9f\x98\x80");
}

TEST_F(TelemetryTest, JsonRejectsGarbageWithOffsets) {
  EXPECT_FALSE(json::parse("{").ok());
  EXPECT_FALSE(json::parse("[1, 2,]").ok());
  EXPECT_FALSE(json::parse("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(json::parse("\"unterminated").ok());
  auto R = json::parse("[1, x]");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("byte"), std::string::npos) << R.message();
}

//===----------------------------------------------------------------------===//
// jsonEscape round-trips through every sink
//===----------------------------------------------------------------------===//

namespace {
/// Quotes, backslashes, newlines, tabs, and a raw control byte — the
/// characters that break naive JSON emitters.
const std::string kHostile = "evil\"name\\with\nnew\tline\x01end";
} // namespace

TEST_F(TelemetryTest, HostileStringsRoundTripThroughChromeTrace) {
  trace::EnabledGuard G(true, false);
  trace::clear();
  {
    trace::Span Sp(kHostile.c_str());
    Sp.annotate(kHostile, kHostile);
  }
  char Tmpl[] = "/tmp/fttrace.XXXXXX.json";
  int Fd = ::mkstemps(Tmpl, 5);
  ASSERT_GE(Fd, 0);
  ::close(Fd);
  Status S = trace::writeChromeTrace(Tmpl);
  ASSERT_TRUE(S.ok()) << S.message();
  auto R = json::parseFile(Tmpl);
  ::unlink(Tmpl);
  trace::clear();
  ASSERT_TRUE(R.ok()) << R.message();

  const json::Value *Events = R->get("traceEvents");
  ASSERT_NE(Events, nullptr);
  bool Found = false;
  for (const json::Value &E : Events->items())
    if (E.str("name") == kHostile) {
      Found = true;
      const json::Value *Args = E.get("args");
      ASSERT_NE(Args, nullptr);
      ASSERT_NE(Args->get(kHostile), nullptr);
      EXPECT_EQ(Args->get(kHostile)->asString(), kHostile);
    }
  EXPECT_TRUE(Found) << "hostile span name did not survive the round trip";
}

TEST_F(TelemetryTest, HostileStringsRoundTripThroughSnapshot) {
  telemetry::setEnabled(true);
  telemetry::RequestSample RS;
  RS.Fingerprint = 0xabcdef;
  RS.Out = Outcome::RunError;
  RS.Error = kHostile;
  telemetry::onRequestComplete(RS);
  // A hostile metric name exercises the counter-key escaping too.
  metrics::counter("test/hostile\"\n\x02name").fetch_add(1);

  std::string Snap = telemetry::writeSnapshotString();
  auto R = json::parse(Snap);
  ASSERT_TRUE(R.ok()) << R.message() << "\n" << Snap;

  const json::Value *Recent = R->at("flight.recent");
  ASSERT_NE(Recent, nullptr);
  ASSERT_EQ(Recent->items().size(), 1u);
  EXPECT_EQ(Recent->items()[0].str("error"), kHostile);
  EXPECT_EQ(Recent->items()[0].str("outcome"), "run_error");
  ASSERT_NE(R->get("counters"), nullptr);
  const json::Value *C = R->get("counters")->get("test/hostile\"\n\x02name");
  ASSERT_NE(C, nullptr);
  EXPECT_DOUBLE_EQ(C->asNumber(), 1.0);
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, FlightRecorderWrapsAndDrainsInOrder) {
  FlightRecorder FR(4);
  for (uint64_t I = 0; I < 10; ++I) {
    FlightEvent E;
    E.Fingerprint = I;
    FR.record(std::move(E));
  }
  EXPECT_EQ(FR.size(), 4u);
  EXPECT_EQ(FR.capacity(), 4u);
  std::vector<FlightEvent> Got = FR.drain();
  ASSERT_EQ(Got.size(), 4u);
  // The newest four, oldest first, with the stamped Seq preserved.
  for (size_t I = 0; I < 4; ++I) {
    EXPECT_EQ(Got[I].Fingerprint, 6 + I);
    EXPECT_EQ(Got[I].Seq, 6 + I);
  }
  EXPECT_EQ(FR.size(), 0u);
  // drain() leaves the cumulative summary alone.
  EXPECT_EQ(FR.summary().Recorded, 10u);
}

TEST_F(TelemetryTest, FlightRecorderOutcomeTalliesAndTruncation) {
  FlightRecorder FR(8);
  auto Rec = [&FR](Outcome O) {
    FlightEvent E;
    E.Out = O;
    FR.record(std::move(E));
  };
  Rec(Outcome::Ok);
  Rec(Outcome::Ok);
  Rec(Outcome::InvalidArgs);
  Rec(Outcome::RunError);
  Rec(Outcome::RejectedFull);
  Rec(Outcome::RejectedShutdown);
  FlightSummary S = FR.summary();
  EXPECT_EQ(S.Recorded, 6u);
  EXPECT_EQ(S.Ok, 2u);
  EXPECT_EQ(S.InvalidArgs, 1u);
  EXPECT_EQ(S.RunErrors, 1u);
  EXPECT_EQ(S.RejectedFull, 1u);
  EXPECT_EQ(S.RejectedShutdown, 1u);

  FlightEvent Long;
  Long.Error = std::string(4096, 'x');
  FR.record(std::move(Long));
  std::vector<FlightEvent> All = FR.drain();
  EXPECT_LE(All.back().Error.size(), 160u);

  EXPECT_STREQ(nameOf(Outcome::Ok), "ok");
  EXPECT_STREQ(nameOf(Outcome::InvalidArgs), "invalid_args");
  EXPECT_STREQ(nameOf(Outcome::RunError), "run_error");
  EXPECT_STREQ(nameOf(Outcome::RejectedFull), "rejected_full");
  EXPECT_STREQ(nameOf(Outcome::RejectedShutdown), "rejected_shutdown");
}

//===----------------------------------------------------------------------===//
// Hooks, ranking, and the off switch
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, HooksRecordNothingWhenDisabled) {
  telemetry::setEnabled(false);
  telemetry::RequestSample RS;
  RS.Fingerprint = 42;
  RS.QueueNs = 100;
  telemetry::onRequestComplete(RS);
  telemetry::onReject(42, Outcome::RejectedFull);
  EXPECT_EQ(telemetry::onBatch(4), 0u);
  telemetry::onCompile(1000, true);

  EXPECT_EQ(metrics::histogram("serve/queue_wait_ns").count(), 0u);
  EXPECT_EQ(metrics::histogram("serve/batch_size").count(), 0u);
  EXPECT_EQ(metrics::histogram("serve/compile_ns").count(), 0u);
  EXPECT_EQ(flightRecorder().summary().Recorded, 0u);
  EXPECT_TRUE(telemetry::hotKernels().empty());
}

TEST_F(TelemetryTest, HotKernelsRankByTotalServedTime) {
  telemetry::setEnabled(true);
  auto Feed = [](uint64_t Fp, int N, uint64_t TotalNsEach, Tier T,
                 Outcome O = Outcome::Ok) {
    for (int I = 0; I < N; ++I) {
      telemetry::RequestSample RS;
      RS.Fingerprint = Fp;
      RS.ServedBy = T;
      RS.Out = O;
      RS.TotalNs = TotalNsEach;
      RS.QueueNs = 1;
      RS.RunNs = TotalNsEach - 1;
      telemetry::onRequestComplete(RS);
    }
  };
  Feed(0x1, 100, 1000, Tier::Jit);              // 100k ns total
  Feed(0x2, 2, 1'000'000, Tier::Interp);        // 2M ns: hottest
  Feed(0x3, 10, 500, Tier::Jit, Outcome::RunError);

  std::vector<telemetry::HotKernel> Hot = telemetry::hotKernels();
  ASSERT_EQ(Hot.size(), 3u);
  EXPECT_EQ(Hot[0].Fingerprint, 0x2u);
  EXPECT_EQ(Hot[0].Requests, 2u);
  EXPECT_EQ(Hot[0].TotalNs, 2'000'000u);
  EXPECT_DOUBLE_EQ(Hot[0].MeanNs, 1'000'000.0);
  EXPECT_EQ(Hot[0].Interp, 2u);
  EXPECT_EQ(Hot[1].Fingerprint, 0x1u);
  EXPECT_EQ(Hot[2].Fingerprint, 0x3u);
  EXPECT_EQ(Hot[2].Errors, 10u);

  // TopK truncation.
  EXPECT_EQ(telemetry::hotKernels(1).size(), 1u);
}

//===----------------------------------------------------------------------===//
// Snapshot exporter
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, ExporterWritesValidMonotoneSnapshotsWithRetention) {
  namespace fs = std::filesystem;
  char Tmpl[] = "/tmp/fttelem.XXXXXX";
  ASSERT_NE(::mkdtemp(Tmpl), nullptr);
  std::string Dir = Tmpl;

  telemetry::Config C;
  C.Dir = Dir;
  C.IntervalMs = 20;
  C.Keep = 3;
  ASSERT_TRUE(telemetry::startExporter(C).ok());
  EXPECT_TRUE(telemetry::enabled());

  telemetry::RequestSample RS;
  RS.Fingerprint = 0xdeadbeefcafef00dull;
  RS.TotalNs = 12345;
  telemetry::onRequestComplete(RS);

  // Long enough for several intervals; stop writes one more (the exit
  // dump), so retention must still hold afterwards.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  telemetry::stopExporter();

  std::vector<std::string> Names;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir))
    Names.push_back(E.path().filename().string());
  std::sort(Names.begin(), Names.end());
  ASSERT_GE(Names.size(), 2u) << "exporter wrote too few snapshots";
  EXPECT_LE(Names.size(), 3u) << "retention did not prune";

  double PrevSeq = 0;
  for (const std::string &N : Names) {
    ASSERT_EQ(N.rfind("snap-", 0), 0u) << N;
    auto R = json::parseFile((fs::path(Dir) / N).string());
    ASSERT_TRUE(R.ok()) << R.message();
    EXPECT_EQ(R->str("schema"), "freetensor-telemetry/v1");
    double Seq = R->num("seq");
    EXPECT_GT(Seq, PrevSeq) << "sequence numbers must be strictly monotone";
    PrevSeq = Seq;
    // The served fingerprint travels as a hex string.
    const json::Value *Kernels = R->get("kernels");
    ASSERT_NE(Kernels, nullptr);
    ASSERT_EQ(Kernels->items().size(), 1u);
    EXPECT_EQ(Kernels->items()[0].str("fingerprint"), "0xdeadbeefcafef00d");
    EXPECT_DOUBLE_EQ(Kernels->items()[0].num("total_ns"), 12345.0);
  }
  EXPECT_GE(telemetry::snapshotsWritten(), Names.size());

  std::system(("rm -rf '" + Dir + "'").c_str());
}

TEST_F(TelemetryTest, SnapshotStringParsesAndCarriesHistograms) {
  telemetry::setEnabled(true);
  metrics::histogram("serve/queue_wait_ns").record(1000);
  metrics::histogram("serve/queue_wait_ns").record(2000);

  auto R = json::parse(telemetry::writeSnapshotString());
  ASSERT_TRUE(R.ok()) << R.message();
  const json::Value *Hs = R->get("histograms");
  ASSERT_NE(Hs, nullptr);
  bool Found = false;
  for (const json::Value &H : Hs->items()) {
    if (H.str("name") != "serve/queue_wait_ns")
      continue;
    Found = true;
    EXPECT_DOUBLE_EQ(H.num("count"), 2.0);
    EXPECT_DOUBLE_EQ(H.num("sum"), 3000.0);
    EXPECT_DOUBLE_EQ(H.num("min"), 1000.0);
    EXPECT_DOUBLE_EQ(H.num("max"), 2000.0);
    ASSERT_NE(H.get("buckets"), nullptr);
    uint64_t Total = 0;
    for (const json::Value &B : H.get("buckets")->items()) {
      ASSERT_EQ(B.items().size(), 2u);
      Total += uint64_t(B.items()[1].asNumber());
    }
    EXPECT_EQ(Total, 2u);
  }
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Telemetry must not perturb compilation
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, GeneratedCodeIsByteIdenticalWithTelemetryOnOrOff) {
  FunctionBuilder B("telemaxpy");
  View X = B.input("x", {makeIntConst(64)});
  View Y = B.output("y", {makeIntConst(64)});
  B.loop("i", 0, 64, [&](Expr I) {
    Y[I].assign(X[I].load() * makeFloatConst(2.0) + makeFloatConst(1.0));
  });
  Func F = B.build();

  telemetry::setEnabled(false);
  std::string Off = generateCpp(F);
  telemetry::setEnabled(true);
  std::string On = generateCpp(F);
  EXPECT_EQ(Off, On);
}
