//===- tests/fuzz_test.cpp - Randomized property tests ----------------------===//
//
// The central soundness property of the system (paper §4.3: "we can
// aggressively try transformations without worrying about their
// correctness"): ANY sequence of transformations the Schedule *accepts*
// must preserve program semantics. We generate random programs, apply
// random schedule requests (accepted or rejected), and compare interpreter
// results before and after; one parameterized sweep also cross-checks the
// JIT backend against the interpreter.
//
// Deterministic seeds keep failures reproducible.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <gtest/gtest.h>

#include "autoschedule/autoschedule.h"
#include "codegen/jit.h"
#include "frontend/libop.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "schedule/schedule.h"

using namespace ft;

namespace {

/// Deterministic PRNG.
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 2654435761u + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // [Lo, Hi)
    return Lo + static_cast<int64_t>(next() % uint64_t(Hi - Lo));
  }
  bool coin() { return next() & 1; }
};

/// A generated program plus the shapes of its parameters.
struct RandomProgram {
  Func F;
  std::map<std::string, std::vector<int64_t>> Shapes;
  std::vector<std::string> Outputs;
};

/// Generates a random 2-level loop program mixing stores, reductions,
/// guards, temporaries and window accesses over 1-D/2-D tensors.
RandomProgram makeRandomProgram(uint64_t Seed) {
  Rng R(Seed);
  const int64_t N = R.range(6, 14);
  const int64_t M = R.range(3, 9);
  FunctionBuilder B("fuzz" + std::to_string(Seed));
  View A = B.input("a", {makeIntConst(N), makeIntConst(M)});
  View Bv = B.input("b", {makeIntConst(N)});
  View Y = B.output("y", {makeIntConst(N), makeIntConst(M)});
  View Z = B.output("z", {makeIntConst(N)});

  // Stmt 1: a guarded windowed elementwise pass.
  B.loop(
      "i", 0, N,
      [&](Expr I) {
        B.loop("j", 0, M, [&](Expr J) {
          Expr V = A[I][J].load() * makeFloatConst(0.5 + (Seed % 3));
          if (R.coin())
            V = V + Bv[I].load();
          if (R.coin()) {
            Y[I][J].assign(V);
          } else {
            Y[I][J].assign(makeFloatConst(0.0));
            B.ifThen(I >= 1, [&] { Y[I][J] += V * makeFloatConst(0.25); });
          }
        });
      },
      "L1");

  // Stmt 2: a reduction with a temporary.
  B.loop(
      "i", 0, N,
      [&](Expr I) {
        View T = B.local("t", {});
        T.assign(0.0);
        B.loop("j", 0, M, [&](Expr J) {
          if (R.coin())
            T += Y[I][J].load();
          else
            T += ft::abs(A[I][J].load());
        });
        Z[I].assign(T.load() + Bv[I].load());
      },
      "L2");

  RandomProgram P;
  P.F = B.build();
  P.Shapes = {{"a", {N, M}}, {"b", {N}}, {"y", {N, M}}, {"z", {N}}};
  P.Outputs = {"y", "z"};
  return P;
}

void seedBuffer(Buffer &B, uint64_t Seed) {
  Rng R(Seed);
  for (int64_t I = 0; I < B.numel(); ++I)
    B.setF(I, std::sin(0.31 * double(I) + double(R.range(0, 7))));
}

std::vector<float> runInterp(const Func &F, const RandomProgram &P) {
  std::map<std::string, Buffer> Store;
  std::map<std::string, Buffer *> Args;
  uint64_t BufSeed = 99;
  for (const std::string &Param : P.F.Params) {
    Store.emplace(Param, Buffer(DataType::Float32, P.Shapes.at(Param)));
    seedBuffer(Store.at(Param), ++BufSeed);
    Args[Param] = &Store.at(Param);
  }
  interpret(F, Args);
  std::vector<float> Out;
  for (const std::string &O : P.Outputs) {
    const Buffer &B = Store.at(O);
    Out.insert(Out.end(), B.as<float>(), B.as<float>() + B.numel());
  }
  return Out;
}

/// Collects every loop ID in the current AST.
std::vector<int64_t> allLoops(const Stmt &S) {
  std::vector<int64_t> Out;
  std::function<void(const Stmt &)> Walk = [&](const Stmt &St) {
    if (auto L = dyn_cast<ForNode>(St)) {
      Out.push_back(L->Id);
      return Walk(L->Body);
    }
    if (auto Seq = dyn_cast<StmtSeqNode>(St)) {
      for (const Stmt &Sub : Seq->Stmts)
        Walk(Sub);
      return;
    }
    if (auto D = dyn_cast<VarDefNode>(St))
      return Walk(D->Body);
    if (auto I = dyn_cast<IfNode>(St)) {
      Walk(I->Then);
      if (I->Else)
        Walk(I->Else);
    }
  };
  Walk(S);
  return Out;
}

/// Applies \p Steps random schedule requests (some will be rejected —
/// that is part of the property being tested).
int applyRandomSchedules(Schedule &S, Rng &R, int Steps) {
  int Accepted = 0;
  for (int Step = 0; Step < Steps; ++Step) {
    std::vector<int64_t> Loops = allLoops(S.ast());
    if (Loops.empty())
      break;
    int64_t L = Loops[R.range(0, Loops.size())];
    switch (R.range(0, 8)) {
    case 0:
      if (S.split(L, R.range(2, 5)).ok())
        ++Accepted;
      break;
    case 1: {
      auto Nest = S.perfectNest(L);
      if (Nest.size() >= 2 && S.merge(Nest[0]->Id, Nest[1]->Id).ok())
        ++Accepted;
      break;
    }
    case 2: {
      auto Nest = S.perfectNest(L);
      if (Nest.size() >= 2 &&
          S.reorder({Nest[1]->Id, Nest[0]->Id}).ok())
        ++Accepted;
      break;
    }
    case 3:
      if (S.parallelize(L).ok())
        ++Accepted;
      break;
    case 4:
      if (S.unroll(L, /*Full=*/true).ok())
        ++Accepted;
      break;
    case 5:
      if (S.vectorize(L).ok())
        ++Accepted;
      break;
    case 6:
      if (S.separateTail(L).ok())
        ++Accepted;
      break;
    case 7: {
      // Try fusing L with its next sibling (often rejected).
      std::vector<int64_t> All = allLoops(S.ast());
      int64_t L2 = All[R.range(0, All.size())];
      if (L != L2 && S.fuse(L, L2).ok())
        ++Accepted;
      break;
    }
    }
  }
  S.cleanup();
  return Accepted;
}

class ScheduleFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleFuzz, AcceptedTransformationsPreserveSemantics) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  RandomProgram P = makeRandomProgram(Seed);
  std::vector<float> Before = runInterp(P.F, P);

  Rng R(Seed * 7919 + 13);
  Schedule S(P.F);
  int Accepted = applyRandomSchedules(S, R, 12);
  std::vector<float> After = runInterp(S.func(), P);

  ASSERT_EQ(Before.size(), After.size());
  for (size_t I = 0; I < Before.size(); ++I)
    ASSERT_NEAR(Before[I], After[I], 1e-4)
        << "seed " << Seed << " diverged after " << Accepted
        << " accepted transformations:\n"
        << toString(S.ast());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleFuzz, ::testing::Range(1, 25));

class CodegenFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CodegenFuzz, JitMatchesInterpreterOnScheduledPrograms) {
  uint64_t Seed = static_cast<uint64_t>(GetParam()) * 31 + 5;
  RandomProgram P = makeRandomProgram(Seed);

  Rng R(Seed + 1);
  Schedule S(P.F);
  applyRandomSchedules(S, R, 6);
  Func Scheduled = S.func();

  std::vector<float> Ref = runInterp(Scheduled, P);

  auto K = Kernel::compile(Scheduled, "-O1");
  ASSERT_TRUE(K.ok()) << K.message();
  std::map<std::string, Buffer> Store;
  std::map<std::string, Buffer *> Args;
  uint64_t BufSeed = 99;
  for (const std::string &Param : P.F.Params) {
    Store.emplace(Param, Buffer(DataType::Float32, P.Shapes.at(Param)));
    seedBuffer(Store.at(Param), ++BufSeed);
    Args[Param] = &Store.at(Param);
  }
  Status RunSt = K->run(Args);
  ASSERT_TRUE(RunSt.ok()) << RunSt.message();
  size_t Idx = 0;
  for (const std::string &O : P.Outputs) {
    const Buffer &B = Store.at(O);
    for (int64_t I = 0; I < B.numel(); ++I, ++Idx)
      ASSERT_NEAR(Ref[Idx], B.as<float>()[I], 1e-4)
          << "seed " << Seed << " output " << O << "[" << I << "]";
  }
}

// A small sweep: each case JIT-compiles, so keep the count CI-friendly.
INSTANTIATE_TEST_SUITE_P(Sweep, CodegenFuzz, ::testing::Range(1, 7));

TEST(AutoScheduleFuzz, AutoScheduleAlwaysPreservesSemantics) {
  for (int SeedI = 100; SeedI < 112; ++SeedI) {
    RandomProgram P = makeRandomProgram(SeedI);
    std::vector<float> Before = runInterp(P.F, P);
    Func Opt = autoScheduleFunc(P.F);
    std::vector<float> After = runInterp(Opt, P);
    ASSERT_EQ(Before.size(), After.size());
    for (size_t I = 0; I < Before.size(); ++I)
      ASSERT_NEAR(Before[I], After[I], 1e-4) << "seed " << SeedI;
  }
}

} // namespace
